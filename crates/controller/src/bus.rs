//! TileLink system-bus timing model.
//!
//! The bus moves 256-bit beats at the host clock; requests carry one of 32
//! RBQ tags, so up to 32 transactions pipeline their request latency while
//! data beats serialise on the link. This is the model behind data paths
//! ❷/❸ and Table 1's 10 ns–100 ns quantum-host communication latency.

use std::collections::VecDeque;

use qtenon_sim_engine::{
    ClockDomain, FaultInjector, FaultSite, Histogram, MetricsRegistry, SimDuration, SimTime,
};
use serde::{Deserialize, Serialize};

use crate::error::ControllerError;
use crate::rbq::TAG_COUNT;

/// Bus geometry and latency parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BusConfig {
    /// Beat width in bits.
    pub width_bits: u32,
    /// Clock domain driving beats.
    pub clock: ClockDomain,
    /// Request round-trip latency (decode + L2 lookup) per transaction,
    /// overlapped across transactions by tagging.
    pub request_latency: SimDuration,
    /// Maximum outstanding transactions (RBQ tags).
    pub max_outstanding: usize,
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig {
            width_bits: 256,
            clock: ClockDomain::from_ghz(1.0),
            request_latency: SimDuration::from_ns(20),
            max_outstanding: TAG_COUNT,
        }
    }
}

/// One scheduled transfer's timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferTiming {
    /// When the request was accepted on the bus.
    pub start: SimTime,
    /// When the last data beat (and thus the transfer) completed.
    pub complete: SimTime,
}

/// The TileLink bus as a shared resource with tag-limited pipelining.
///
/// # Examples
///
/// ```
/// use qtenon_controller::{BusConfig, TileLinkBus};
/// use qtenon_sim_engine::SimTime;
///
/// let mut bus = TileLinkBus::new(BusConfig::default());
/// let t = bus.schedule_transfer(SimTime::ZERO, 64); // two 256-bit beats
/// assert!(t.complete > t.start);
/// ```
#[derive(Debug)]
pub struct TileLinkBus {
    config: BusConfig,
    /// Time the data link frees up.
    link_free_at: SimTime,
    /// Completion times of outstanding transactions (for tag limiting).
    outstanding: VecDeque<SimTime>,
    bytes_moved: u64,
    transfers: u64,
    /// Grant-to-completion latency of each transfer, in nanoseconds.
    latency: Histogram,
    /// Retransmissions performed after injected drops/corruptions.
    retries: u64,
    /// Transactions abandoned after exhausting the retry budget.
    retries_exhausted: u64,
}

impl TileLinkBus {
    /// Creates an idle bus.
    pub fn new(config: BusConfig) -> Self {
        TileLinkBus {
            config,
            link_free_at: SimTime::ZERO,
            outstanding: VecDeque::new(),
            bytes_moved: 0,
            transfers: 0,
            latency: Histogram::new(),
            retries: 0,
            retries_exhausted: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> BusConfig {
        self.config
    }

    /// Number of beats needed for `bytes`.
    pub fn beats_for(&self, bytes: u64) -> u64 {
        (bytes * 8).div_ceil(self.config.width_bits as u64).max(1)
    }

    /// Schedules a transfer of `bytes` requested at time `now`; returns
    /// its start (bus grant) and completion times and advances the bus
    /// state.
    pub fn schedule_transfer(&mut self, now: SimTime, bytes: u64) -> TransferTiming {
        // Drop bookkeeping for transactions that finished before `now`.
        while let Some(&t) = self.outstanding.front() {
            if t <= now {
                self.outstanding.pop_front();
            } else {
                break;
            }
        }
        // Tag limit: if 32 transactions are in flight, wait for the oldest.
        let mut earliest = now;
        if self.outstanding.len() >= self.config.max_outstanding {
            if let Some(freed) = self.outstanding.pop_front() {
                earliest = earliest.max(freed);
            }
        }
        let start = earliest.max(self.link_free_at);
        let data_time = self.config.clock.period() * self.beats_for(bytes);
        // Request latency overlaps with other transactions' data beats;
        // the link itself is busy only for this transfer's beats.
        let complete = start + self.config.request_latency + data_time;
        self.link_free_at = start + data_time;
        self.outstanding.push_back(complete);
        self.bytes_moved += bytes;
        self.transfers += 1;
        self.latency.record((complete - start).as_ps() / 1_000);
        TransferTiming { start, complete }
    }

    /// Schedules a transfer under fault injection: drops and corruptions
    /// drawn from `faults` each force a retransmission after an
    /// exponential backoff, and the returned timing covers the whole
    /// retry chain (first grant to last successful completion).
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::BusRetriesExhausted`] when the drawn
    /// failure count meets the plan's `max_attempts` budget.
    pub fn schedule_transfer_resilient(
        &mut self,
        now: SimTime,
        bytes: u64,
        faults: &mut FaultInjector,
    ) -> Result<TransferTiming, ControllerError> {
        let drops = faults.geometric_failures(FaultSite::BusDrop);
        let corruptions = faults.geometric_failures(FaultSite::BusCorrupt);
        let failures = drops + corruptions;
        let plan = *faults.plan();
        let budget = plan.max_attempts.max(1);
        let first = self.schedule_transfer(now, bytes);
        if failures == 0 {
            return Ok(first);
        }
        if failures >= budget {
            // The link kept eating this transaction; every allowed attempt
            // (including the one just scheduled) failed.
            for attempt in 2..=budget {
                self.retries += 1;
                let retry_at = first.complete + plan.backoff(attempt - 1);
                self.schedule_transfer(retry_at, bytes);
            }
            self.retries_exhausted += 1;
            return Err(ControllerError::BusRetriesExhausted { attempts: budget });
        }
        // Each failed attempt occupies the link for its beats, then the
        // requester backs off and retransmits.
        let mut timing = first;
        for attempt in 1..=failures {
            self.retries += 1;
            let retry_at = timing.complete + plan.backoff(attempt);
            timing = self.schedule_transfer(retry_at, bytes);
        }
        Ok(TransferTiming {
            start: first.start,
            complete: timing.complete,
        })
    }

    /// Total bytes moved.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Total transfers scheduled.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Per-transfer latency distribution in nanoseconds.
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// Retransmissions performed after injected drops/corruptions.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Transactions abandoned after exhausting the retry budget.
    pub fn retries_exhausted(&self) -> u64 {
        self.retries_exhausted
    }

    /// Registers bus statistics under `prefix` (e.g. `controller.bus`).
    pub fn export_metrics(&self, m: &mut MetricsRegistry, prefix: &str) {
        m.counter(&format!("{prefix}.bytes_moved"), self.bytes_moved);
        m.counter(&format!("{prefix}.transfers"), self.transfers);
        m.histogram(&format!("{prefix}.latency_ns"), &self.latency);
    }

    /// Resets the bus to idle (new experiment run).
    pub fn reset(&mut self) {
        self.link_free_at = SimTime::ZERO;
        self.outstanding.clear();
        self.bytes_moved = 0;
        self.transfers = 0;
        self.latency.reset();
        self.retries = 0;
        self.retries_exhausted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> SimDuration {
        SimDuration::from_ns(v)
    }

    #[test]
    fn single_beat_latency() {
        let mut bus = TileLinkBus::new(BusConfig::default());
        let t = bus.schedule_transfer(SimTime::ZERO, 32); // exactly one beat
        assert_eq!(t.start, SimTime::ZERO);
        assert_eq!(t.complete - t.start, ns(21)); // 20 ns request + 1 beat
    }

    #[test]
    fn table1_latency_band() {
        // Table 1 claims 10 ns – 100 ns for tightly-coupled communication.
        let mut bus = TileLinkBus::new(BusConfig::default());
        let small = bus.schedule_transfer(SimTime::ZERO, 8);
        let latency = small.complete - small.start;
        assert!(latency >= ns(10) && latency <= ns(100), "latency={latency}");
    }

    #[test]
    fn beats_round_up() {
        let bus = TileLinkBus::new(BusConfig::default());
        assert_eq!(bus.beats_for(1), 1);
        assert_eq!(bus.beats_for(32), 1);
        assert_eq!(bus.beats_for(33), 2);
        assert_eq!(bus.beats_for(0), 1); // minimum one beat
    }

    #[test]
    fn back_to_back_transfers_pipeline_request_latency() {
        let mut bus = TileLinkBus::new(BusConfig::default());
        let a = bus.schedule_transfer(SimTime::ZERO, 32);
        let b = bus.schedule_transfer(SimTime::ZERO, 32);
        // Second transfer starts as soon as the link frees (1 ns), not
        // after the first completes (21 ns): request latency is hidden.
        assert_eq!(b.start - SimTime::ZERO, ns(1));
        assert_eq!(b.complete - SimTime::ZERO, ns(22));
        assert!(b.complete < a.complete + ns(21));
    }

    #[test]
    fn tag_limit_throttles() {
        let mut bus = TileLinkBus::new(BusConfig {
            max_outstanding: 2,
            ..BusConfig::default()
        });
        let a = bus.schedule_transfer(SimTime::ZERO, 32);
        let _b = bus.schedule_transfer(SimTime::ZERO, 32);
        let c = bus.schedule_transfer(SimTime::ZERO, 32);
        // Third transfer cannot start before the first completes.
        assert!(c.start >= a.complete);
    }

    #[test]
    fn throughput_is_bounded_by_link() {
        let mut bus = TileLinkBus::new(BusConfig::default());
        let mut last = TransferTiming {
            start: SimTime::ZERO,
            complete: SimTime::ZERO,
        };
        for _ in 0..100 {
            last = bus.schedule_transfer(SimTime::ZERO, 32);
        }
        // 100 beats at 1 ns each, plus one request latency at the tail.
        assert_eq!(last.complete - SimTime::ZERO, ns(100 + 20));
        assert_eq!(bus.bytes_moved(), 3200);
        assert_eq!(bus.transfers(), 100);
    }

    #[test]
    fn resilient_transfer_without_faults_matches_plain_path() {
        use qtenon_sim_engine::{FaultInjector, FaultPlan};
        let mut plain = TileLinkBus::new(BusConfig::default());
        let mut faulty = TileLinkBus::new(BusConfig::default());
        let mut inj = FaultInjector::new(FaultPlan::default());
        for bytes in [8, 64, 288] {
            let a = plain.schedule_transfer(SimTime::ZERO, bytes);
            let b = faulty
                .schedule_transfer_resilient(SimTime::ZERO, bytes, &mut inj)
                .unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(faulty.retries(), 0);
    }

    #[test]
    fn injected_drops_force_retransmission_and_lengthen_transfers() {
        use qtenon_sim_engine::{FaultInjector, FaultPlan, FaultSite};
        let plan = FaultPlan::default()
            .with_rate(FaultSite::BusDrop, 0.4)
            .with_seed(11);
        let mut bus = TileLinkBus::new(BusConfig::default());
        let mut inj = FaultInjector::new(plan);
        let mut clean = TileLinkBus::new(BusConfig::default());
        let mut saw_retry = false;
        for _ in 0..50 {
            let base = clean.schedule_transfer(SimTime::ZERO, 32);
            match bus.schedule_transfer_resilient(SimTime::ZERO, 32, &mut inj) {
                Ok(t) => {
                    assert!(t.complete >= base.complete);
                    if t.complete > base.complete + SimDuration::from_ns(40) {
                        saw_retry = true;
                    }
                }
                Err(ControllerError::BusRetriesExhausted { attempts }) => {
                    assert_eq!(attempts, plan.max_attempts);
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(saw_retry, "0.4 drop rate over 50 transfers never retried");
        assert!(bus.retries() > 0);
    }

    #[test]
    fn reset_returns_to_idle() {
        let mut bus = TileLinkBus::new(BusConfig::default());
        bus.schedule_transfer(SimTime::ZERO, 1024);
        bus.reset();
        let t = bus.schedule_transfer(SimTime::ZERO, 32);
        assert_eq!(t.start, SimTime::ZERO);
        assert_eq!(bus.transfers(), 1);
    }
}
