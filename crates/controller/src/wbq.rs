//! The Write Buffer Queue (Fig. 5).
//!
//! The public quantum-controller-cache space is written in 32-bit units
//! (e.g. program words) while the system bus delivers 256-bit beats. The
//! WBQ adapts between the widths with eight separate 32-bit queues, one
//! per 32-bit lane of the bus word; an `SIndex` records which lanes of
//! each beat carry valid data so variable-length writes land at the right
//! offsets.

use qtenon_sim_engine::MetricsRegistry;

use crate::error::ControllerError;

/// Number of 32-bit lanes in a 256-bit bus beat.
pub const LANES: usize = 8;

/// One buffered 32-bit write with its destination lane resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneWrite {
    /// Which 32-bit lane of the beat the datum occupies.
    pub lane: usize,
    /// The datum.
    pub data: u32,
}

/// The eight-lane write buffer adapting 256-bit beats to 32-bit writes.
///
/// # Examples
///
/// ```
/// use qtenon_controller::WriteBufferQueue;
///
/// let mut wbq = WriteBufferQueue::new();
/// // A 3-word write starting at lane 6 wraps into the next beat.
/// wbq.enqueue(6, &[0xa, 0xb, 0xc]).unwrap();
/// let drained = wbq.drain().unwrap();
/// assert_eq!(drained.len(), 3);
/// assert_eq!(drained[0].lane, 6);
/// assert_eq!(drained[2].lane, 0); // wrapped
/// ```
#[derive(Debug, Default)]
pub struct WriteBufferQueue {
    queues: [std::collections::VecDeque<u32>; LANES],
    /// Order in which lanes were fed, so draining preserves write order.
    sindex: std::collections::VecDeque<usize>,
    enqueued: u64,
}

impl WriteBufferQueue {
    /// Creates an empty WBQ.
    pub fn new() -> Self {
        WriteBufferQueue::default()
    }

    /// Buffers a write of consecutive 32-bit words starting at
    /// `start_lane` (the low three bits of the destination word address).
    /// Words beyond lane 7 wrap to lane 0 of the following beat, exactly
    /// like consecutive addresses on the 256-bit bus.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::LaneOutOfRange`] if `start_lane` is not
    /// a valid lane index; nothing is buffered in that case.
    pub fn enqueue(&mut self, start_lane: usize, words: &[u32]) -> Result<(), ControllerError> {
        if start_lane >= LANES {
            return Err(ControllerError::LaneOutOfRange {
                lane: start_lane,
                lanes: LANES,
            });
        }
        for (i, &w) in words.iter().enumerate() {
            let lane = (start_lane + i) % LANES;
            self.queues[lane].push_back(w);
            self.sindex.push_back(lane);
            self.enqueued += 1;
        }
        Ok(())
    }

    /// Pops the next buffered write in arrival order (`Ok(None)` when the
    /// buffer is empty).
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::EmptyLane`] if the lane-order index
    /// names a lane with no buffered data — a structural inconsistency
    /// (e.g. a corrupted SIndex) rather than a normal empty buffer.
    pub fn pop(&mut self) -> Result<Option<LaneWrite>, ControllerError> {
        let Some(lane) = self.sindex.pop_front() else {
            return Ok(None);
        };
        let data = self.queues[lane]
            .pop_front()
            .ok_or(ControllerError::EmptyLane { lane })?;
        Ok(Some(LaneWrite { lane, data }))
    }

    /// Drains everything buffered, in arrival order.
    ///
    /// # Errors
    ///
    /// Propagates the first structural error from [`WriteBufferQueue::pop`].
    pub fn drain(&mut self) -> Result<Vec<LaneWrite>, ControllerError> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(w) = self.pop()? {
            out.push(w);
        }
        Ok(out)
    }

    /// Number of words currently buffered.
    pub fn len(&self) -> usize {
        self.sindex.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.sindex.is_empty()
    }

    /// Total words ever enqueued.
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Registers WBQ statistics under `prefix` (e.g. `controller.wbq`).
    pub fn export_metrics(&self, m: &mut MetricsRegistry, prefix: &str) {
        m.counter(&format!("{prefix}.enqueued"), self.enqueued);
        m.gauge(&format!("{prefix}.buffered"), self.len() as f64);
    }

    /// Number of 256-bit bus beats needed to carry `words` 32-bit words
    /// starting at `start_lane` (a full beat moves eight words).
    pub fn beats_for(start_lane: usize, words: usize) -> usize {
        if words == 0 {
            return 0;
        }
        (start_lane + words).div_ceil(LANES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_full_beat() {
        let mut wbq = WriteBufferQueue::new();
        let words: Vec<u32> = (0..8).collect();
        wbq.enqueue(0, &words).unwrap();
        let out = wbq.drain().unwrap();
        assert_eq!(out.len(), 8);
        for (i, w) in out.iter().enumerate() {
            assert_eq!(w.lane, i);
            assert_eq!(w.data, i as u32);
        }
    }

    #[test]
    fn unaligned_write_wraps_lanes() {
        let mut wbq = WriteBufferQueue::new();
        wbq.enqueue(5, &[1, 2, 3, 4, 5]).unwrap();
        let lanes: Vec<usize> = wbq.drain().unwrap().iter().map(|w| w.lane).collect();
        assert_eq!(lanes, vec![5, 6, 7, 0, 1]);
    }

    #[test]
    fn arrival_order_preserved_across_writes() {
        let mut wbq = WriteBufferQueue::new();
        wbq.enqueue(0, &[10]).unwrap();
        wbq.enqueue(0, &[20]).unwrap(); // same lane: must come out after 10
        wbq.enqueue(3, &[30]).unwrap();
        let data: Vec<u32> = wbq.drain().unwrap().iter().map(|w| w.data).collect();
        assert_eq!(data, vec![10, 20, 30]);
    }

    #[test]
    fn len_and_counters() {
        let mut wbq = WriteBufferQueue::new();
        assert!(wbq.is_empty());
        wbq.enqueue(0, &[1, 2, 3]).unwrap();
        assert_eq!(wbq.len(), 3);
        wbq.pop().unwrap();
        assert_eq!(wbq.len(), 2);
        assert_eq!(wbq.total_enqueued(), 3);
    }

    #[test]
    fn beat_arithmetic() {
        assert_eq!(WriteBufferQueue::beats_for(0, 0), 0);
        assert_eq!(WriteBufferQueue::beats_for(0, 8), 1);
        assert_eq!(WriteBufferQueue::beats_for(0, 9), 2);
        assert_eq!(WriteBufferQueue::beats_for(6, 3), 2); // wraps a beat
        assert_eq!(WriteBufferQueue::beats_for(7, 1), 1);
    }

    #[test]
    fn bad_lane_is_a_typed_error() {
        let mut wbq = WriteBufferQueue::new();
        assert_eq!(
            wbq.enqueue(8, &[1]),
            Err(ControllerError::LaneOutOfRange { lane: 8, lanes: 8 })
        );
        assert!(wbq.is_empty(), "failed enqueue must not buffer anything");
    }

    #[test]
    fn pop_on_empty_buffer_is_ok_none() {
        let mut wbq = WriteBufferQueue::new();
        assert_eq!(wbq.pop(), Ok(None));
    }
}
