//! The Qtenon quantum controller (Section 5.2–5.3).
//!
//! The controller sits between the host memory hierarchy and the quantum
//! chip, owning the quantum controller cache and the pulse compute units.
//! This crate models every hardware structure from Figs. 5–7:
//!
//! - [`rbq`]: the Reorder Buffer Queue — 32 tagged outstanding TileLink
//!   transactions realigned to issue order;
//! - [`wbq`]: the Write Buffer Queue — eight 32-bit lanes adapting the
//!   256-bit system bus to the 32-bit public-segment write width;
//! - [`barrier`]: the soft memory barrier enabling fine-grained
//!   synchronisation (queried via RoCC in one cycle, Section 6.2);
//! - [`bus`]: the TileLink system-bus timing model with tag-limited
//!   pipelining;
//! - [`slt`]: the per-qubit Skip Lookup Table with Least-Count replacement
//!   and QSpace write-back (Fig. 7);
//! - [`pgu`]: the pulse-generation-unit pool (8 units × 1000-cycle
//!   black-box latency, priority-encoder dispatch);
//! - [`pipeline`]: the four-stage pulse pipeline tying it together
//!   (Fig. 6);
//! - [`adi`]: the SerDes/Analog-Digital-Interface bandwidth model
//!   (64 bit/ns per qubit, 100 ns interface latency).

pub mod adi;
pub mod barrier;
pub mod bus;
pub mod error;
pub mod pgu;
pub mod pipeline;
pub mod rbq;
pub mod readout;
pub mod slt;
pub mod wbq;

pub use adi::AdiModel;
pub use barrier::MemoryBarrier;
pub use bus::{BusConfig, TileLinkBus};
pub use error::ControllerError;
pub use pgu::PguPool;
pub use pipeline::{PipelineConfig, PipelineReport, PulsePipeline};
pub use rbq::ReorderBufferQueue;
pub use readout::ReadoutProcessor;
pub use slt::{PulseResolution, SltController, SltStats};
pub use wbq::WriteBufferQueue;
