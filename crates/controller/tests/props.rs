//! Property-based tests for the controller's hardware structures.

use proptest::prelude::*;

use qtenon_controller::pgu::{PguConfig, PguPool};
use qtenon_controller::{MemoryBarrier, ReorderBufferQueue, SltController, WriteBufferQueue};
use qtenon_isa::{GateType, QccLayout, QubitId};
use qtenon_sim_engine::{SimDuration, SimTime};

proptest! {
    #[test]
    fn rbq_realigns_any_completion_order(order in prop::collection::vec(0usize..16, 16)) {
        // Build a permutation from the raw vector (stable dedup).
        let mut perm: Vec<usize> = (0..16).collect();
        for (i, &o) in order.iter().enumerate() {
            perm.swap(i, o % 16);
        }
        let mut rbq = ReorderBufferQueue::new();
        let tags: Vec<_> = (0..16).map(|_| rbq.issue().unwrap()).collect();
        for &i in &perm {
            rbq.complete(tags[i], i).unwrap();
        }
        for expected in 0..16 {
            prop_assert_eq!(rbq.pop_in_order(), Some(expected));
        }
    }

    #[test]
    fn wbq_preserves_order_and_lane_mapping(
        writes in prop::collection::vec((0usize..8, prop::collection::vec(any::<u32>(), 1..12)), 0..20)
    ) {
        let mut wbq = WriteBufferQueue::new();
        let mut expected = Vec::new();
        for (lane, data) in &writes {
            wbq.enqueue(*lane, data).unwrap();
            for (i, &d) in data.iter().enumerate() {
                expected.push(((lane + i) % 8, d));
            }
        }
        let drained = wbq.drain().unwrap();
        prop_assert_eq!(drained.len(), expected.len());
        for (got, (lane, data)) in drained.iter().zip(expected) {
            prop_assert_eq!(got.lane, lane);
            prop_assert_eq!(got.data, data);
        }
        prop_assert!(wbq.is_empty());
    }

    #[test]
    fn barrier_query_matches_marked_ranges(
        ranges in prop::collection::vec((0u64..10_000, 1u64..256), 0..20),
        probes in prop::collection::vec(0u64..11_000, 20),
    ) {
        let mut barrier = MemoryBarrier::new();
        for (i, &(start, len)) in ranges.iter().enumerate() {
            barrier.mark_synced(start, len, SimTime::ZERO + SimDuration::from_ns(i as u64));
        }
        for &p in &probes {
            let expected = ranges.iter().any(|&(s, l)| p >= s && p < s + l);
            prop_assert_eq!(barrier.is_synced(p), expected, "probe {}", p);
        }
    }

    #[test]
    fn pgu_pool_never_overlaps_a_unit(jobs in 1usize..64, units in 1usize..12) {
        let mut pool = PguPool::new(PguConfig {
            units,
            ..PguConfig::default()
        })
        .unwrap();
        let mut per_unit: Vec<Vec<(SimTime, SimTime)>> = vec![Vec::new(); units];
        for _ in 0..jobs {
            let d = pool.dispatch(SimTime::ZERO);
            per_unit[d.unit].push((d.start, d.done));
        }
        for intervals in &per_unit {
            for w in intervals.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "unit double-booked");
            }
        }
        prop_assert_eq!(pool.dispatched(), jobs as u64);
    }

    #[test]
    fn slt_same_key_same_address_forever(
        codes in prop::collection::vec(0u32..(1 << 27), 1..64)
    ) {
        let layout = QccLayout::for_qubits(4).unwrap();
        let mut slt = SltController::new(layout);
        let mut book = std::collections::HashMap::new();
        for &code in &codes {
            let r = slt.resolve(QubitId::new(0), GateType::Rx, code).unwrap();
            // Key = the tag the hardware uses (top 20 bits of the code).
            let key = code >> 7;
            let addr = r.qaddr();
            if let Some(&prev) = book.get(&key) {
                prop_assert_eq!(addr, prev, "tag {:x} moved", key);
            } else {
                book.insert(key, addr);
            }
        }
        // Accounting identity.
        let s = slt.stats();
        prop_assert_eq!(s.lookups, codes.len() as u64);
        prop_assert_eq!(s.hits + s.qspace_hits + s.allocations, s.lookups);
    }
}
