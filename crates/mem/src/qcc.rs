//! The quantum controller cache: five segments with real storage and
//! public/private access control.
//!
//! The QCC sits at the same level as the host L1 (Fig. 4). `.program`,
//! `.regfile`, and `.measure` are public; `.pulse` and `.slt` are enforced
//! private — the paper keeps them under exclusive hardware control to
//! avoid three-way synchronisation between interdependent segments.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

use qtenon_isa::{ProgramEntry, QAddress, QccLayout, Segment};
use qtenon_sim_engine::MetricsRegistry;
use serde::{Deserialize, Serialize};

use crate::MemError;

/// Who is performing a QCC access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessPort {
    /// User software via data paths ❶/❷ — public segments only.
    HostPublic,
    /// The controller's own logic via data path ❸ — all segments.
    Controller,
}

/// A 640-bit `.pulse` entry, stored as ten 64-bit words (the hardware
/// splits each entry into ten parallel buffers ahead of the SerDes).
pub type PulseWord = [u64; 10];

/// The quantum controller cache with functional storage for every segment.
///
/// # Examples
///
/// ```
/// use qtenon_isa::{EncodedAngle, GateType, ProgramEntry, QccLayout, QubitId};
/// use qtenon_mem::qcc::{AccessPort, QuantumControllerCache};
///
/// let layout = QccLayout::for_qubits(8)?;
/// let mut qcc = QuantumControllerCache::new(layout);
/// let addr = layout.program_entry(QubitId::new(2), 0)?;
/// let entry = ProgramEntry::rotation(GateType::Ry, EncodedAngle::from_radians(1.0));
/// qcc.write_program(AccessPort::HostPublic, addr, entry)?;
/// assert_eq!(qcc.read_program(AccessPort::HostPublic, addr)?, entry);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct QuantumControllerCache {
    layout: QccLayout,
    program: Vec<ProgramEntry>,
    pulse: Vec<PulseWord>,
    measure: Vec<u64>,
    regfile: Vec<u32>,
    /// Successful reads (interior-mutable: reads take `&self`).
    reads: Cell<u64>,
    /// Successful writes.
    writes: u64,
    /// Pending single-event upsets in `.measure`, keyed by flat segment
    /// index. Each value is the xor mask the upset applied to the raw
    /// array bits; the SECDED decoder corrects it on the next read.
    measure_faults: RefCell<BTreeMap<usize, u64>>,
    /// Upsets detected and corrected by the ECC decoder.
    ecc_corrections: Cell<u64>,
}

impl QuantumControllerCache {
    /// Allocates the cache for a layout, zero/idle-initialised.
    pub fn new(layout: QccLayout) -> Self {
        QuantumControllerCache {
            layout,
            program: vec![ProgramEntry::idle(); layout.segment_entries(Segment::Program) as usize],
            pulse: vec![[0; 10]; layout.segment_entries(Segment::Pulse) as usize],
            measure: vec![0; layout.segment_entries(Segment::Measure) as usize],
            regfile: vec![0; layout.segment_entries(Segment::Regfile) as usize],
            reads: Cell::new(0),
            writes: 0,
            measure_faults: RefCell::new(BTreeMap::new()),
            ecc_corrections: Cell::new(0),
        }
    }

    /// The layout this cache was built for.
    pub fn layout(&self) -> QccLayout {
        self.layout
    }

    fn locate(
        &self,
        port: AccessPort,
        addr: QAddress,
        expected: Segment,
    ) -> Result<usize, MemError> {
        let decoded = self
            .layout
            .decode(addr)
            .map_err(|_| MemError::BadAddress { addr })?;
        if decoded.segment != expected {
            return Err(MemError::WrongSegment {
                expected,
                actual: decoded.segment,
            });
        }
        if port == AccessPort::HostPublic && !decoded.segment.is_public() {
            return Err(MemError::PrivateSegment {
                segment: decoded.segment,
            });
        }
        // Flat index within the segment's backing store.
        let base = self.layout.segment_base(expected);
        Ok((addr.raw() - base) as usize)
    }

    /// Reads a `.program` entry.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for unmapped or wrong-segment addresses.
    pub fn read_program(&self, port: AccessPort, addr: QAddress) -> Result<ProgramEntry, MemError> {
        let idx = self.locate(port, addr, Segment::Program)?;
        self.reads.set(self.reads.get() + 1);
        Ok(self.program[idx])
    }

    /// Writes a `.program` entry.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for unmapped or wrong-segment addresses.
    pub fn write_program(
        &mut self,
        port: AccessPort,
        addr: QAddress,
        entry: ProgramEntry,
    ) -> Result<(), MemError> {
        let idx = self.locate(port, addr, Segment::Program)?;
        self.program[idx] = entry;
        self.writes += 1;
        Ok(())
    }

    /// Reads a `.pulse` entry (controller-only).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::PrivateSegment`] for host access.
    pub fn read_pulse(&self, port: AccessPort, addr: QAddress) -> Result<PulseWord, MemError> {
        let idx = self.locate(port, addr, Segment::Pulse)?;
        self.reads.set(self.reads.get() + 1);
        Ok(self.pulse[idx])
    }

    /// Writes a `.pulse` entry (controller-only).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::PrivateSegment`] for host access.
    pub fn write_pulse(
        &mut self,
        port: AccessPort,
        addr: QAddress,
        word: PulseWord,
    ) -> Result<(), MemError> {
        let idx = self.locate(port, addr, Segment::Pulse)?;
        self.pulse[idx] = word;
        self.writes += 1;
        Ok(())
    }

    /// Reads a `.measure` entry.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for unmapped or wrong-segment addresses.
    pub fn read_measure(&self, port: AccessPort, addr: QAddress) -> Result<u64, MemError> {
        let idx = self.locate(port, addr, Segment::Measure)?;
        self.reads.set(self.reads.get() + 1);
        // The SECDED decoder sits on the read path: a pending upset is
        // detected, corrected, and scrubbed before data leaves the array,
        // so callers always observe the value that was written.
        if self.measure_faults.borrow_mut().remove(&idx).is_some() {
            self.ecc_corrections.set(self.ecc_corrections.get() + 1);
        }
        Ok(self.measure[idx])
    }

    /// Writes a `.measure` entry.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for unmapped or wrong-segment addresses.
    pub fn write_measure(
        &mut self,
        port: AccessPort,
        addr: QAddress,
        value: u64,
    ) -> Result<(), MemError> {
        let idx = self.locate(port, addr, Segment::Measure)?;
        self.measure[idx] = value;
        // A full-word write refreshes the check bits, clearing any
        // pending upset without a correction event.
        self.measure_faults.borrow_mut().remove(&idx);
        self.writes += 1;
        Ok(())
    }

    /// Injects a single-event upset into the `.measure` entry at `addr`:
    /// the raw array bits are flipped by `mask` until the next read
    /// (SECDED correction) or write (check-bit refresh) of that entry.
    /// A zero mask, or a second flip of the same bits, is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for unmapped or wrong-segment addresses.
    pub fn poison_measure(&mut self, addr: QAddress, mask: u64) -> Result<(), MemError> {
        let idx = self.locate(AccessPort::Controller, addr, Segment::Measure)?;
        if mask != 0 {
            let mut faults = self.measure_faults.borrow_mut();
            let pending = faults.entry(idx).or_insert(0);
            *pending ^= mask;
            if *pending == 0 {
                faults.remove(&idx);
            }
        }
        Ok(())
    }

    /// Upsets detected and corrected by the `.measure` ECC decoder.
    pub fn ecc_corrections(&self) -> u64 {
        self.ecc_corrections.get()
    }

    /// Reads a `.regfile` entry.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for unmapped or wrong-segment addresses.
    pub fn read_regfile(&self, port: AccessPort, addr: QAddress) -> Result<u32, MemError> {
        let idx = self.locate(port, addr, Segment::Regfile)?;
        self.reads.set(self.reads.get() + 1);
        Ok(self.regfile[idx])
    }

    /// Writes a `.regfile` entry (the `q_update` fast path).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for unmapped or wrong-segment addresses.
    pub fn write_regfile(
        &mut self,
        port: AccessPort,
        addr: QAddress,
        value: u32,
    ) -> Result<(), MemError> {
        let idx = self.locate(port, addr, Segment::Regfile)?;
        self.regfile[idx] = value;
        self.writes += 1;
        Ok(())
    }

    /// Reads a register by flat index (pipeline stage 2's regfile fetch).
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds the register file.
    pub fn regfile_by_index(&self, index: u32) -> u32 {
        self.reads.set(self.reads.get() + 1);
        self.regfile[index as usize]
    }

    /// Number of successful reads so far (all segments and ports).
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }

    /// Number of successful writes so far (all segments and ports).
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Registers QCC access statistics under `prefix` (e.g. `mem.qcc`).
    pub fn export_metrics(&self, m: &mut MetricsRegistry, prefix: &str) {
        m.counter(&format!("{prefix}.reads"), self.reads());
        m.counter(&format!("{prefix}.writes"), self.writes());
        if self.ecc_corrections() > 0 {
            m.counter(&format!("{prefix}.ecc_corrections"), self.ecc_corrections());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtenon_isa::{EncodedAngle, GateType, QubitId};

    fn qcc() -> (QccLayout, QuantumControllerCache) {
        let layout = QccLayout::for_qubits(8).unwrap();
        (layout, QuantumControllerCache::new(layout))
    }

    #[test]
    fn program_round_trip_per_qubit_chunks() {
        let (layout, mut qcc) = qcc();
        let e0 = ProgramEntry::rotation(GateType::Rx, EncodedAngle::from_radians(0.5));
        let e1 = ProgramEntry::cz(3).unwrap();
        let a0 = layout.program_entry(QubitId::new(0), 7).unwrap();
        let a1 = layout.program_entry(QubitId::new(7), 7).unwrap();
        qcc.write_program(AccessPort::HostPublic, a0, e0).unwrap();
        qcc.write_program(AccessPort::HostPublic, a1, e1).unwrap();
        assert_eq!(qcc.read_program(AccessPort::HostPublic, a0).unwrap(), e0);
        assert_eq!(qcc.read_program(AccessPort::HostPublic, a1).unwrap(), e1);
    }

    #[test]
    fn pulse_is_private_to_controller() {
        let (layout, mut qcc) = qcc();
        let addr = layout.pulse_entry(QubitId::new(0), 0).unwrap();
        assert!(matches!(
            qcc.write_pulse(AccessPort::HostPublic, addr, [1; 10]),
            Err(MemError::PrivateSegment {
                segment: Segment::Pulse
            })
        ));
        qcc.write_pulse(AccessPort::Controller, addr, [7; 10])
            .unwrap();
        assert_eq!(
            qcc.read_pulse(AccessPort::Controller, addr).unwrap(),
            [7; 10]
        );
        assert!(qcc.read_pulse(AccessPort::HostPublic, addr).is_err());
    }

    #[test]
    fn measure_and_regfile_round_trip() {
        let (layout, mut qcc) = qcc();
        let m = layout.measure_entry(5).unwrap();
        let r = layout.regfile_entry(3).unwrap();
        qcc.write_measure(AccessPort::Controller, m, 0xdead)
            .unwrap();
        qcc.write_regfile(AccessPort::HostPublic, r, 0xbeef)
            .unwrap();
        assert_eq!(qcc.read_measure(AccessPort::HostPublic, m).unwrap(), 0xdead);
        assert_eq!(qcc.read_regfile(AccessPort::HostPublic, r).unwrap(), 0xbeef);
        assert_eq!(qcc.regfile_by_index(3), 0xbeef);
    }

    #[test]
    fn wrong_segment_rejected() {
        let (layout, qcc) = qcc();
        let prog = layout.program_entry(QubitId::new(0), 0).unwrap();
        assert!(matches!(
            qcc.read_measure(AccessPort::HostPublic, prog),
            Err(MemError::WrongSegment {
                expected: Segment::Measure,
                actual: Segment::Program
            })
        ));
    }

    #[test]
    fn unmapped_address_rejected() {
        let (_, qcc) = qcc();
        let hole = QAddress::new(0x40000).unwrap();
        assert!(matches!(
            qcc.read_program(AccessPort::HostPublic, hole),
            Err(MemError::BadAddress { .. })
        ));
    }

    #[test]
    fn access_counters_track_successful_ops() {
        let (layout, mut qcc) = qcc();
        let r = layout.regfile_entry(0).unwrap();
        qcc.write_regfile(AccessPort::HostPublic, r, 1).unwrap();
        qcc.read_regfile(AccessPort::HostPublic, r).unwrap();
        qcc.regfile_by_index(0);
        // A rejected access does not count.
        let pulse = layout.pulse_entry(qtenon_isa::QubitId::new(0), 0).unwrap();
        assert!(qcc.read_pulse(AccessPort::HostPublic, pulse).is_err());
        assert_eq!(qcc.writes(), 1);
        assert_eq!(qcc.reads(), 2);
        let mut m = MetricsRegistry::new();
        qcc.export_metrics(&mut m, "mem.qcc");
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn measure_upset_is_corrected_and_scrubbed_on_read() {
        let (layout, mut qcc) = qcc();
        let m = layout.measure_entry(2).unwrap();
        qcc.write_measure(AccessPort::Controller, m, 0b1010)
            .unwrap();
        qcc.poison_measure(m, 0b0110).unwrap();
        // The decoder corrects the flip: the caller sees the written value.
        assert_eq!(qcc.read_measure(AccessPort::Controller, m).unwrap(), 0b1010);
        assert_eq!(qcc.ecc_corrections(), 1);
        // Scrubbed: the second read is clean, no new correction.
        assert_eq!(qcc.read_measure(AccessPort::Controller, m).unwrap(), 0b1010);
        assert_eq!(qcc.ecc_corrections(), 1);
        let mut metrics = MetricsRegistry::new();
        qcc.export_metrics(&mut metrics, "mem.qcc");
        assert_eq!(metrics.len(), 3);
    }

    #[test]
    fn write_refreshes_check_bits_without_a_correction() {
        let (layout, mut qcc) = qcc();
        let m = layout.measure_entry(0).unwrap();
        qcc.poison_measure(m, u64::MAX).unwrap();
        qcc.write_measure(AccessPort::Controller, m, 77).unwrap();
        assert_eq!(qcc.read_measure(AccessPort::Controller, m).unwrap(), 77);
        assert_eq!(qcc.ecc_corrections(), 0);
    }

    #[test]
    fn double_flip_cancels_and_zero_mask_is_noop() {
        let (layout, mut qcc) = qcc();
        let m = layout.measure_entry(1).unwrap();
        qcc.poison_measure(m, 0).unwrap();
        qcc.poison_measure(m, 0b11).unwrap();
        qcc.poison_measure(m, 0b11).unwrap();
        assert_eq!(qcc.read_measure(AccessPort::Controller, m).unwrap(), 0);
        assert_eq!(qcc.ecc_corrections(), 0);
    }

    #[test]
    fn storage_sizes_match_layout() {
        let (layout, qcc) = qcc();
        assert_eq!(
            qcc.program.len() as u64,
            layout.segment_entries(Segment::Program)
        );
        assert_eq!(
            qcc.pulse.len() as u64,
            layout.segment_entries(Segment::Pulse)
        );
    }
}
