//! Set-associative cache timing model with LRU replacement.

use serde::{Deserialize, Serialize};

use qtenon_sim_engine::{Counter, MetricsRegistry};

use crate::MemError;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Hit latency in cycles of the owning clock domain.
    pub hit_latency_cycles: u64,
}

impl CacheConfig {
    /// The paper's L1: 16 KB, 4-way (Table 4), 64 B lines, 2-cycle hits.
    pub fn l1_16k() -> Self {
        CacheConfig {
            size_bytes: 16 * 1024,
            ways: 4,
            line_bytes: 64,
            hit_latency_cycles: 2,
        }
    }

    /// The paper's L2: 512 KB, 4-way, 8 banks (Table 4); 20-cycle hits.
    pub fn l2_512k() -> Self {
        CacheConfig {
            size_bytes: 512 * 1024,
            ways: 4,
            line_bytes: 64,
            hit_latency_cycles: 20,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn n_sets(&self) -> u64 {
        self.size_bytes / (self.ways as u64 * self.line_bytes as u64)
    }
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was present.
    pub hit: bool,
    /// Whether a dirty line was evicted to make room.
    pub writeback: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    dirty: bool,
    /// Monotonic use stamp for LRU.
    last_use: u64,
}

/// A set-associative cache with LRU replacement and write-back policy.
///
/// This is a *timing/occupancy* model — it tracks which lines are present,
/// not their data (data lives in the functional models).
///
/// # Examples
///
/// ```
/// use qtenon_mem::{Cache, CacheConfig};
///
/// let mut l1 = Cache::new(CacheConfig::l1_16k())?;
/// assert!(!l1.access(0x1000, false).hit); // cold miss
/// assert!(l1.access(0x1000, false).hit);  // now resident
/// # Ok::<(), qtenon_mem::MemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
    hits: Counter,
    misses: Counter,
    writebacks: Counter,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadConfig`] for non-power-of-two or zero
    /// geometry.
    pub fn new(config: CacheConfig) -> Result<Self, MemError> {
        let bad = |message: String| MemError::BadConfig { message };
        if config.line_bytes == 0 || !config.line_bytes.is_power_of_two() {
            return Err(bad(format!(
                "line size {} must be a power of two",
                config.line_bytes
            )));
        }
        if config.ways == 0 {
            return Err(bad("associativity must be non-zero".into()));
        }
        let n_sets = config.n_sets();
        if n_sets == 0 || !n_sets.is_power_of_two() {
            return Err(bad(format!("set count {n_sets} must be a power of two")));
        }
        Ok(Cache {
            config,
            sets: vec![Vec::new(); n_sets as usize],
            clock: 0,
            hits: Counter::new(),
            misses: Counter::new(),
            writebacks: Counter::new(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Performs one access at byte address `addr`, allocating on miss.
    pub fn access(&mut self, addr: u64, write: bool) -> AccessOutcome {
        self.clock += 1;
        let line_addr = addr / self.config.line_bytes as u64;
        let set_idx = (line_addr % self.config.n_sets()) as usize;
        let tag = line_addr / self.config.n_sets();
        let set = &mut self.sets[set_idx];

        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.last_use = self.clock;
            line.dirty |= write;
            self.hits.incr();
            return AccessOutcome {
                hit: true,
                writeback: false,
            };
        }

        self.misses.incr();
        let mut writeback = false;
        if set.len() as u32 >= self.config.ways {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .map(|(i, _)| i)
                .expect("non-empty set");
            let evicted = set.swap_remove(victim);
            if evicted.dirty {
                writeback = true;
                self.writebacks.incr();
            }
        }
        set.push(Line {
            tag,
            dirty: write,
            last_use: self.clock,
        });
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// Number of hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.count()
    }

    /// Number of misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.count()
    }

    /// Number of dirty evictions so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks.count()
    }

    /// Hit rate over all accesses (0 if none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }

    /// Registers this cache's statistics under `prefix` (e.g. `mem.l1`).
    pub fn export_metrics(&self, m: &mut MetricsRegistry, prefix: &str) {
        m.counter(&format!("{prefix}.hits"), self.hits());
        m.counter(&format!("{prefix}.misses"), self.misses());
        m.counter(&format!("{prefix}.writebacks"), self.writebacks());
        m.gauge(&format!("{prefix}.hit_rate"), self.hit_rate());
    }

    /// Forgets all cached lines and statistics.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.clock = 0;
        self.hits.reset();
        self.misses.reset();
        self.writebacks.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets × 2 ways × 64 B lines = 256 B.
        Cache::new(CacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 64,
            hit_latency_cycles: 1,
        })
        .unwrap()
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0, false).hit);
        assert!(c.access(0, false).hit);
        assert!(c.access(63, false).hit); // same line
        assert!(!c.access(64, false).hit); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to set 0 (stride = 2 sets × 64 B = 128 B).
        c.access(0, false);
        c.access(128, false);
        c.access(0, false); // refresh line 0
        c.access(256, false); // evicts line at 128
        assert!(c.access(0, false).hit);
        assert!(!c.access(128, false).hit);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = tiny();
        c.access(0, true); // dirty
        c.access(128, false);
        let out = c.access(256, false); // set full: evicts LRU = line 0 (dirty)
        assert!(out.writeback);
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(0, false);
        c.access(128, false);
        let out = c.access(256, false);
        assert!(!out.writeback);
    }

    #[test]
    fn hit_rate_and_reset() {
        let mut c = tiny();
        assert_eq!(c.hit_rate(), 0.0);
        c.access(0, false);
        c.access(0, false);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
        c.reset();
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(!c.access(0, false).hit);
    }

    #[test]
    fn paper_geometries_are_valid() {
        assert!(Cache::new(CacheConfig::l1_16k()).is_ok());
        assert!(Cache::new(CacheConfig::l2_512k()).is_ok());
        assert_eq!(CacheConfig::l1_16k().n_sets(), 64);
    }

    #[test]
    fn bad_geometry_rejected() {
        assert!(Cache::new(CacheConfig {
            size_bytes: 100,
            ways: 3,
            line_bytes: 60,
            hit_latency_cycles: 1
        })
        .is_err());
        assert!(Cache::new(CacheConfig {
            size_bytes: 256,
            ways: 0,
            line_bytes: 64,
            hit_latency_cycles: 1
        })
        .is_err());
    }
}
