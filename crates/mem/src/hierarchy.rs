//! L1 → L2 → DRAM latency composition.

use serde::{Deserialize, Serialize};

use qtenon_sim_engine::{ClockDomain, MetricsRegistry, SimDuration};

use crate::cache::{Cache, CacheConfig};
use crate::MemError;

/// Configuration of the host memory hierarchy (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1 data cache geometry.
    pub l1: CacheConfig,
    /// L2 cache geometry.
    pub l2: CacheConfig,
    /// DRAM access latency.
    pub dram_latency: SimDuration,
    /// Clock domain whose cycles the cache latencies are counted in.
    pub clock: ClockDomain,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1: CacheConfig::l1_16k(),
            l2: CacheConfig::l2_512k(),
            // DDR3 class access latency.
            dram_latency: SimDuration::from_ns(80),
            clock: ClockDomain::from_ghz(1.0),
        }
    }
}

/// The host's L1/L2/DRAM hierarchy as a latency model.
///
/// # Examples
///
/// ```
/// use qtenon_mem::{HierarchyConfig, MemoryHierarchy};
///
/// let mut mem = MemoryHierarchy::new(HierarchyConfig::default())?;
/// let cold = mem.access(0x1000, false);
/// let warm = mem.access(0x1000, false);
/// assert!(warm < cold);
/// # Ok::<(), qtenon_mem::MemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    l1: Cache,
    l2: Cache,
    dram_accesses: u64,
}

impl MemoryHierarchy {
    /// Creates an empty hierarchy.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadConfig`] for invalid cache geometry.
    pub fn new(config: HierarchyConfig) -> Result<Self, MemError> {
        Ok(MemoryHierarchy {
            config,
            l1: Cache::new(config.l1)?,
            l2: Cache::new(config.l2)?,
            dram_accesses: 0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> HierarchyConfig {
        self.config
    }

    /// Performs one access and returns its latency.
    pub fn access(&mut self, addr: u64, write: bool) -> SimDuration {
        let clk = self.config.clock;
        let mut latency = clk.cycles(self.config.l1.hit_latency_cycles);
        if self.l1.access(addr, write).hit {
            return latency;
        }
        latency += clk.cycles(self.config.l2.hit_latency_cycles);
        if self.l2.access(addr, write).hit {
            return latency;
        }
        self.dram_accesses += 1;
        latency + self.config.dram_latency
    }

    /// Latency to read `bytes` starting at `addr`, touching each cache
    /// line once (the streaming pattern of `q_set`/`q_acquire` buffers).
    pub fn access_range(&mut self, addr: u64, bytes: u64, write: bool) -> SimDuration {
        let line = self.config.l1.line_bytes as u64;
        let first = addr / line;
        let last = (addr + bytes.max(1) - 1) / line;
        (first..=last).map(|l| self.access(l * line, write)).sum()
    }

    /// L1 hit rate so far.
    pub fn l1_hit_rate(&self) -> f64 {
        self.l1.hit_rate()
    }

    /// L2 hit rate so far (of L1 misses).
    pub fn l2_hit_rate(&self) -> f64 {
        self.l2.hit_rate()
    }

    /// Number of DRAM accesses so far.
    pub fn dram_accesses(&self) -> u64 {
        self.dram_accesses
    }

    /// Registers the hierarchy's statistics under `prefix` (e.g. `mem`),
    /// yielding `mem.l1.*`, `mem.l2.*`, and `mem.dram.accesses`.
    pub fn export_metrics(&self, m: &mut MetricsRegistry, prefix: &str) {
        self.l1.export_metrics(m, &format!("{prefix}.l1"));
        self.l2.export_metrics(m, &format!("{prefix}.l2"));
        m.counter(&format!("{prefix}.dram.accesses"), self.dram_accesses);
    }

    /// Forgets all cached state and statistics.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
        self.dram_accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::default()).unwrap()
    }

    #[test]
    fn latency_ordering_l1_l2_dram() {
        let mut m = mem();
        let cold = m.access(0, false); // L1 miss, L2 miss, DRAM
        let l1_hit = m.access(0, false);
        assert_eq!(l1_hit, SimDuration::from_ns(2));
        assert_eq!(cold, SimDuration::from_ns(2 + 20 + 80));
        assert_eq!(m.dram_accesses(), 1);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut m = mem();
        m.access(0, false);
        // Blow L1 (16 KB) with a 32 KB sweep; L2 (512 KB) keeps everything.
        for a in (0..32 * 1024u64).step_by(64) {
            m.access(0x10_0000 + a, false);
        }
        let lat = m.access(0, false);
        assert_eq!(lat, SimDuration::from_ns(22)); // L1 miss + L2 hit
    }

    #[test]
    fn range_access_touches_each_line_once() {
        let mut m = mem();
        let lat = m.access_range(0, 256, false); // 4 lines, all cold
        assert_eq!(lat, SimDuration::from_ns(4 * 102));
        let lat2 = m.access_range(0, 256, false); // all L1 hits
        assert_eq!(lat2, SimDuration::from_ns(4 * 2));
    }

    #[test]
    fn range_of_zero_bytes_touches_one_line() {
        let mut m = mem();
        assert_eq!(m.access_range(64, 0, false), SimDuration::from_ns(102));
    }

    #[test]
    fn unaligned_range_spans_extra_line() {
        let mut m = mem();
        // 64 bytes starting at offset 32 touch two lines.
        assert_eq!(m.access_range(32, 64, false), SimDuration::from_ns(2 * 102));
    }

    #[test]
    fn reset_clears_state() {
        let mut m = mem();
        m.access(0, false);
        m.reset();
        assert_eq!(m.dram_accesses(), 0);
        // Cold again.
        assert_eq!(m.access(0, false), SimDuration::from_ns(102));
    }
}
