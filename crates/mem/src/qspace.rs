//! QSpace: the DRAM region backing SLT evictions.
//!
//! QSpace reserves 2²⁰ × 4 B = 4 MB of DRAM per qubit (Fig. 7 ❸), indexed
//! by the 20-bit parameter tag. When the per-qubit SLT evicts an entry it
//! writes the `(tag → pulse QAddress)` mapping back here; on an SLT miss
//! the controller consults QSpace before allocating a fresh pulse address.
//! The region is shielded from the CPU — only the controller's private
//! data path ❸ reaches it.
//!
//! The model stores mappings sparsely (a dense 4 MB/qubit allocation would
//! be wasteful in a simulator) but accounts the architectural capacity.

use std::collections::HashMap;

use qtenon_isa::QAddress;
use serde::{Deserialize, Serialize};

/// Capacity in entries per qubit: one per 20-bit tag.
pub const ENTRIES_PER_QUBIT: u64 = 1 << 20;

/// Bytes per entry (a packed 30-bit QAddress plus a valid bit).
pub const BYTES_PER_ENTRY: u64 = 4;

/// One qubit's stored tag→pulse mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QSpaceEntry {
    /// The pulse address the tag maps to.
    pub qaddr: QAddress,
}

/// The per-qubit QSpace tag store.
///
/// # Examples
///
/// ```
/// use qtenon_isa::QAddress;
/// use qtenon_mem::QSpace;
///
/// let mut qs = QSpace::new(64);
/// qs.store(3, 0x1234, QAddress::new(0x80010)?);
/// assert_eq!(qs.lookup(3, 0x1234).unwrap().qaddr.raw(), 0x80010);
/// assert!(qs.lookup(3, 0x9999).is_none());
/// # Ok::<(), qtenon_isa::IsaError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct QSpace {
    n_qubits: u32,
    tables: Vec<HashMap<u32, QSpaceEntry>>,
    reads: u64,
    writes: u64,
}

impl QSpace {
    /// Creates an empty QSpace for `n_qubits` qubits.
    pub fn new(n_qubits: u32) -> Self {
        QSpace {
            n_qubits,
            tables: vec![HashMap::new(); n_qubits as usize],
            reads: 0,
            writes: 0,
        }
    }

    /// The number of qubits.
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// Architectural capacity in bytes (4 MB per qubit).
    pub fn reserved_bytes(&self) -> u64 {
        self.n_qubits as u64 * ENTRIES_PER_QUBIT * BYTES_PER_ENTRY
    }

    /// Looks up a tag for one qubit.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` or `tag` is out of range.
    pub fn lookup(&mut self, qubit: u32, tag: u32) -> Option<QSpaceEntry> {
        assert!((tag as u64) < ENTRIES_PER_QUBIT, "tag exceeds 20 bits");
        self.reads += 1;
        self.tables[qubit as usize].get(&tag).copied()
    }

    /// Stores (or overwrites) a tag→pulse mapping for one qubit.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` or `tag` is out of range.
    pub fn store(&mut self, qubit: u32, tag: u32, qaddr: QAddress) {
        assert!((tag as u64) < ENTRIES_PER_QUBIT, "tag exceeds 20 bits");
        self.writes += 1;
        self.tables[qubit as usize].insert(tag, QSpaceEntry { qaddr });
    }

    /// Number of valid mappings currently held for one qubit.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    pub fn occupancy(&self, qubit: u32) -> usize {
        self.tables[qubit as usize].len()
    }

    /// Total QSpace reads performed (data path ❸ traffic, read side).
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total QSpace writes performed (data path ❸ traffic, write side).
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Clears all mappings and statistics.
    pub fn reset(&mut self) {
        for t in &mut self.tables {
            t.clear();
        }
        self.reads = 0;
        self.writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qa(raw: u64) -> QAddress {
        QAddress::new(raw).unwrap()
    }

    #[test]
    fn store_lookup_round_trip() {
        let mut qs = QSpace::new(4);
        qs.store(0, 100, qa(0x80000));
        qs.store(0, 200, qa(0x80001));
        qs.store(1, 100, qa(0x80400));
        assert_eq!(qs.lookup(0, 100).unwrap().qaddr, qa(0x80000));
        assert_eq!(qs.lookup(0, 200).unwrap().qaddr, qa(0x80001));
        // Per-qubit isolation: qubit 1's tag 100 differs from qubit 0's.
        assert_eq!(qs.lookup(1, 100).unwrap().qaddr, qa(0x80400));
        assert!(qs.lookup(2, 100).is_none());
    }

    #[test]
    fn overwrite_replaces() {
        let mut qs = QSpace::new(1);
        qs.store(0, 7, qa(1));
        qs.store(0, 7, qa(2));
        assert_eq!(qs.lookup(0, 7).unwrap().qaddr, qa(2));
        assert_eq!(qs.occupancy(0), 1);
    }

    #[test]
    fn traffic_counters() {
        let mut qs = QSpace::new(1);
        qs.store(0, 1, qa(1));
        qs.lookup(0, 1);
        qs.lookup(0, 2);
        assert_eq!(qs.writes(), 1);
        assert_eq!(qs.reads(), 2);
        qs.reset();
        assert_eq!(qs.reads() + qs.writes(), 0);
        assert_eq!(qs.occupancy(0), 0);
    }

    #[test]
    fn reserved_capacity_is_4mb_per_qubit() {
        let qs = QSpace::new(64);
        assert_eq!(qs.reserved_bytes(), 64 * 4 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "tag exceeds 20 bits")]
    fn oversized_tag_panics() {
        let mut qs = QSpace::new(1);
        qs.store(0, 1 << 20, qa(0));
    }
}
