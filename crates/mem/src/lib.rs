//! Unified memory hierarchy models for the Qtenon reproduction.
//!
//! Qtenon's hardware contribution starts from a unified memory space: the
//! host's L1/L2/DRAM hierarchy plus a *quantum controller cache* (QCC)
//! placed at the L1 level, and a reserved DRAM region (*QSpace*) backing
//! the controller's skip-lookup-table evictions. This crate provides:
//!
//! - [`cache`]: a set-associative cache timing model with LRU replacement;
//! - [`hierarchy`]: L1 → L2 → DRAM latency composition with access stats;
//! - [`qcc`]: the five-segment QCC with real storage, per-qubit chunks,
//!   and public/private access control (Fig. 4, Table 2);
//! - [`qspace`]: the per-qubit QSpace tag store (2²⁰ × 4 B per qubit).
//!
//! # Examples
//!
//! ```
//! use qtenon_isa::{QccLayout, QubitId};
//! use qtenon_mem::qcc::{AccessPort, QuantumControllerCache};
//!
//! let layout = QccLayout::for_qubits(8)?;
//! let mut qcc = QuantumControllerCache::new(layout);
//! let addr = layout.regfile_entry(0)?;
//! qcc.write_regfile(AccessPort::HostPublic, addr, 0x55)?;
//! assert_eq!(qcc.read_regfile(AccessPort::HostPublic, addr)?, 0x55);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cache;
pub mod hierarchy;
pub mod qcc;
pub mod qspace;

pub use cache::{Cache, CacheConfig};
pub use hierarchy::{HierarchyConfig, MemoryHierarchy};
pub use qcc::{AccessPort, QuantumControllerCache};
pub use qspace::QSpace;

use std::fmt;

use qtenon_isa::{QAddress, Segment};

/// Errors from memory-model operations.
#[derive(Debug, Clone, PartialEq)]
pub enum MemError {
    /// User software touched a private segment (`.pulse` or `.slt`).
    PrivateSegment {
        /// The segment that was illegally accessed.
        segment: Segment,
    },
    /// An address decoded into the wrong segment for the operation.
    WrongSegment {
        /// The segment expected by the accessor.
        expected: Segment,
        /// The segment the address actually decodes to.
        actual: Segment,
    },
    /// An address did not decode at all.
    BadAddress {
        /// The offending address.
        addr: QAddress,
    },
    /// A cache/hierarchy configuration was invalid.
    BadConfig {
        /// Description of the invalid configuration.
        message: String,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::PrivateSegment { segment } => {
                write!(f, "segment {segment} is private to the controller")
            }
            MemError::WrongSegment { expected, actual } => {
                write!(f, "expected a {expected} address, got {actual}")
            }
            MemError::BadAddress { addr } => write!(f, "unmapped quantum address {addr}"),
            MemError::BadConfig { message } => write!(f, "bad memory config: {message}"),
        }
    }
}

impl std::error::Error for MemError {}
