//! Property-based tests for the memory models.

use proptest::prelude::*;

use qtenon_isa::{EncodedAngle, GateType, ProgramEntry, QccLayout, QubitId};
use qtenon_mem::qcc::{AccessPort, QuantumControllerCache};
use qtenon_mem::{Cache, CacheConfig, HierarchyConfig, MemoryHierarchy, QSpace};

proptest! {
    #[test]
    fn cache_never_exceeds_capacity_and_repeats_hit(
        addrs in prop::collection::vec(0u64..4096, 1..200)
    ) {
        let config = CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            hit_latency_cycles: 1,
        };
        let mut cache = Cache::new(config).unwrap();
        for &a in &addrs {
            cache.access(a, false);
        }
        // Immediately repeating the most recent access always hits.
        let last = *addrs.last().unwrap();
        prop_assert!(cache.access(last, false).hit);
        // Accounting: accesses = hits + misses.
        prop_assert_eq!(cache.hits() + cache.misses(), addrs.len() as u64 + 1);
    }

    #[test]
    fn working_set_within_capacity_always_hits_after_warmup(
        base in 0u64..10_000
    ) {
        // 8 lines in a 2-way × 8-set cache (16-line capacity): after one
        // warm pass, every access hits forever.
        let config = CacheConfig {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 64,
            hit_latency_cycles: 1,
        };
        let mut cache = Cache::new(config).unwrap();
        let lines: Vec<u64> = (0..8).map(|i| base + i * 64).collect();
        for &l in &lines {
            cache.access(l, false);
        }
        for _ in 0..3 {
            for &l in &lines {
                prop_assert!(cache.access(l, false).hit);
            }
        }
    }

    #[test]
    fn hierarchy_latency_is_monotone_in_depth(addr in 0u64..1_000_000) {
        let mut mem = MemoryHierarchy::new(HierarchyConfig::default()).unwrap();
        let cold = mem.access(addr, false);
        let warm = mem.access(addr, false);
        prop_assert!(warm < cold);
        // Re-access is an L1 hit: exactly the L1 latency.
        prop_assert_eq!(warm, qtenon_sim_engine::SimDuration::from_ns(2));
    }

    #[test]
    fn qcc_program_roundtrip_random_entries(
        qubit in 0u32..8,
        entry_idx in 0u64..1024,
        code in 0u32..(1 << 27),
    ) {
        let layout = QccLayout::for_qubits(8).unwrap();
        let mut qcc = QuantumControllerCache::new(layout);
        let addr = layout.program_entry(QubitId::new(qubit), entry_idx).unwrap();
        let entry = ProgramEntry::rotation(GateType::Rz, EncodedAngle::from_code(code));
        qcc.write_program(AccessPort::HostPublic, addr, entry).unwrap();
        prop_assert_eq!(qcc.read_program(AccessPort::HostPublic, addr).unwrap(), entry);
        // Pack/unpack through the 65-bit format is lossless too.
        prop_assert_eq!(ProgramEntry::unpack(entry.pack()).unwrap(), entry);
    }

    #[test]
    fn qspace_is_a_faithful_map(
        ops in prop::collection::vec((0u32..4, 0u32..1024, 0u64..(1 << 20)), 0..100)
    ) {
        let mut qs = QSpace::new(4);
        let mut model = std::collections::HashMap::new();
        for (qubit, tag, addr) in ops {
            let qaddr = qtenon_isa::QAddress::new(addr).unwrap();
            qs.store(qubit, tag, qaddr);
            model.insert((qubit, tag), qaddr);
        }
        for ((qubit, tag), expected) in model {
            prop_assert_eq!(qs.lookup(qubit, tag).unwrap().qaddr, expected);
        }
    }
}
