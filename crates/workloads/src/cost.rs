//! Shot-based cost evaluation with host-operation counting.
//!
//! After a `q_run`, the host turns measured bitstrings into a cost value.
//! A performance-conscious host implementation (what the paper's RISC-V
//! firmware would run) evaluates diagonal Hamiltonians **bit-sliced**:
//! shots are transposed into qubit-major bitplanes (64 shots per machine
//! word), and each Z-product term reduces to XORing its qubits' planes
//! and popcounting — O(terms + qubits) word operations per 64-shot block
//! instead of O(terms × shots) scalar ones. This is what keeps host
//! computation a minor, near-linearly-scaling share in Figs. 13 and 17.
//!
//! The evaluation here performs exactly that computation and records the
//! corresponding abstract operations into an [`OpCounter`] so the host
//! core models charge a realistic cycle count.

use qtenon_quantum::{BitString, Hamiltonian};
use qtenon_sim_engine::{OpClass, OpCounter};

/// Shots per bit-sliced block (one machine word).
pub const BLOCK_SHOTS: usize = 64;

/// Precomputed term structure for fast repeated evaluation.
#[derive(Debug, Clone)]
pub struct CostEvaluator {
    coeffs: Vec<f64>,
    /// Qubits per term (diagonal Z products involve very few).
    term_qubits: Vec<Vec<u32>>,
    constant: f64,
    n_qubits: u32,
}

impl CostEvaluator {
    /// Builds the evaluator for a Hamiltonian.
    pub fn new(h: &Hamiltonian) -> Self {
        CostEvaluator {
            coeffs: h.terms().iter().map(|t| t.coeff).collect(),
            term_qubits: h.terms().iter().map(|t| t.qubits.clone()).collect(),
            constant: h.constant(),
            n_qubits: h.n_qubits(),
        }
    }

    /// The Hamiltonian's identity offset.
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// Sum of the Hamiltonian's values over up to [`BLOCK_SHOTS`] shots,
    /// evaluated bit-sliced, recording ops.
    ///
    /// # Panics
    ///
    /// Panics if `shots` exceeds one block.
    pub fn block_value_sum(&self, shots: &[BitString], ops: &mut OpCounter) -> f64 {
        assert!(shots.len() <= BLOCK_SHOTS, "block too large");
        if shots.is_empty() {
            return 0.0;
        }
        let k = shots.len();
        // Transpose to qubit-major bitplanes: plane[q] bit s = shot s's
        // qubit q. A firmware implementation does this with the standard
        // 64×64 word transpose (~6 word ops per output word).
        let mut planes = vec![0u64; self.n_qubits as usize];
        for (s, shot) in shots.iter().enumerate() {
            for (q, plane) in planes.iter_mut().enumerate() {
                if shot.get(q as u32) {
                    *plane |= 1u64 << s;
                }
            }
        }
        let words_per_shot = (self.n_qubits as u64).div_ceil(64);
        ops.record(OpClass::IntAlu, 6 * self.n_qubits as u64);
        ops.record(
            OpClass::Mem,
            (k as u64) * words_per_shot + self.n_qubits as u64,
        );

        let mut acc = 0.0;
        for (coeff, qubits) in self.coeffs.iter().zip(&self.term_qubits) {
            // Parity plane of the term: XOR of its qubits' planes.
            let parity = qubits.iter().fold(0u64, |p, &q| p ^ planes[q as usize]);
            // Shots with odd parity contribute −coeff, the rest +coeff.
            let odd = (parity & low_mask(k)).count_ones() as f64;
            acc += coeff * (k as f64 - 2.0 * odd);
            ops.record(OpClass::IntAlu, qubits.len() as u64 + 2);
            ops.record(OpClass::Mem, qubits.len() as u64 + 1);
            ops.record(OpClass::FpAlu, 2);
        }
        acc
    }

    /// Sample-mean cost over any number of shots, processed in 64-shot
    /// blocks, recording ops.
    pub fn mean_over(&self, shots: &[BitString], ops: &mut OpCounter) -> f64 {
        if shots.is_empty() {
            return self.constant;
        }
        let mut acc = 0.0;
        for block in shots.chunks(BLOCK_SHOTS) {
            acc += self.block_value_sum(block, ops);
            ops.record(OpClass::Branch, 2);
        }
        ops.record(OpClass::FpComplex, 1);
        ops.record(OpClass::FpAlu, 1);
        self.constant + acc / shots.len() as f64
    }
}

fn low_mask(k: usize) -> u64 {
    if k >= 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

/// Computes the sample-mean cost `⟨H⟩` over `shots`, recording the
/// arithmetic into `ops`.
///
/// Builds the term table on the fly; hot paths that evaluate the same
/// Hamiltonian repeatedly should hold a [`CostEvaluator`] instead.
///
/// # Examples
///
/// ```
/// use qtenon_quantum::{BitString, Hamiltonian, PauliTerm};
/// use qtenon_sim_engine::OpCounter;
/// use qtenon_workloads::evaluate_cost;
///
/// let h = Hamiltonian::new(1, vec![PauliTerm::z(0, 1.0)], 0.0);
/// let shots = vec![BitString::from_u64(0, 1), BitString::from_u64(1, 1)];
/// let mut ops = OpCounter::new();
/// let cost = evaluate_cost(&h, &shots, &mut ops);
/// assert_eq!(cost, 0.0);
/// assert!(ops.total() > 0);
/// ```
pub fn evaluate_cost(h: &Hamiltonian, shots: &[BitString], ops: &mut OpCounter) -> f64 {
    CostEvaluator::new(h).mean_over(shots, ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtenon_quantum::PauliTerm;

    #[test]
    fn matches_hamiltonian_expectation() {
        let h = Hamiltonian::new(
            2,
            vec![PauliTerm::z(0, 0.5), PauliTerm::zz(0, 1, -1.0)],
            0.25,
        );
        let shots: Vec<BitString> = [0b00u64, 0b01, 0b10, 0b11]
            .iter()
            .map(|&v| BitString::from_u64(v, 2))
            .collect();
        let mut ops = OpCounter::new();
        let via_counter = evaluate_cost(&h, &shots, &mut ops);
        let direct = h.expectation_from_shots(&shots);
        assert!((via_counter - direct).abs() < 1e-12);
    }

    #[test]
    fn matches_across_block_boundaries() {
        // > 64 shots exercises multi-block accumulation.
        let h = Hamiltonian::molecular(10, 7);
        let shots: Vec<BitString> = (0..200u64)
            .map(|i| BitString::from_u64(i.wrapping_mul(0x9E37_79B9), 10))
            .collect();
        let mut ops = OpCounter::new();
        let fast = evaluate_cost(&h, &shots, &mut ops);
        let direct = h.expectation_from_shots(&shots);
        assert!((fast - direct).abs() < 1e-9, "fast {fast} direct {direct}");
    }

    #[test]
    fn matches_across_word_boundaries() {
        // 70-qubit Hamiltonian exercises multi-word shots.
        let h = Hamiltonian::new(
            70,
            vec![PauliTerm::zz(63, 64, 1.0), PauliTerm::z(69, -0.5)],
            0.0,
        );
        let mut shot = BitString::zeros(70);
        shot.set(63, true);
        shot.set(69, true);
        let mut ops = OpCounter::new();
        let v = evaluate_cost(&h, &[shot.clone()], &mut ops);
        assert!((v - h.value_on(&shot)).abs() < 1e-12);
    }

    #[test]
    fn bit_sliced_cost_is_sublinear_in_shots() {
        // The op count for 64 shots is far less than 64× one shot's.
        let h = Hamiltonian::molecular(16, 0);
        let one = vec![BitString::zeros(16)];
        let many = vec![BitString::zeros(16); 64];
        let eval = CostEvaluator::new(&h);
        let mut ops_one = OpCounter::new();
        eval.mean_over(&one, &mut ops_one);
        let mut ops_many = OpCounter::new();
        eval.mean_over(&many, &mut ops_many);
        assert!(
            ops_many.total() < 4 * ops_one.total(),
            "64 shots cost {} vs 1 shot {}",
            ops_many.total(),
            ops_one.total()
        );
    }

    #[test]
    fn empty_shots_cost_constant_only() {
        let h = Hamiltonian::new(1, vec![PauliTerm::z(0, 1.0)], 0.75);
        let mut ops = OpCounter::new();
        assert_eq!(evaluate_cost(&h, &[], &mut ops), 0.75);
        assert_eq!(ops.total(), 0);
    }

    #[test]
    fn block_sum_rejects_oversize() {
        let h = Hamiltonian::molecular(4, 0);
        let eval = CostEvaluator::new(&h);
        let shots = vec![BitString::zeros(4); 65];
        let result = std::panic::catch_unwind(|| {
            let mut ops = OpCounter::new();
            eval.block_value_sum(&shots, &mut ops)
        });
        assert!(result.is_err());
    }

    #[test]
    fn evaluator_reuse_matches_one_shot_path() {
        let h = Hamiltonian::molecular(16, 3);
        let shots = vec![BitString::from_u64(0xDEAD, 16); 5];
        let eval = CostEvaluator::new(&h);
        let mut a = OpCounter::new();
        let mut b = OpCounter::new();
        assert_eq!(
            eval.mean_over(&shots, &mut a),
            evaluate_cost(&h, &shots, &mut b)
        );
        assert_eq!(a, b);
    }
}
