//! Hybrid quantum-classical workloads: the three benchmark VQAs and their
//! classical optimizers (Section 7.1).
//!
//! - [`graph`]: deterministic problem graphs for MAX-CUT;
//! - [`workload`]: QAOA (standard alternating ansatz, five layers), VQE
//!   (hardware-efficient ansatz over a molecular-stand-in Hamiltonian),
//!   and QNN (alternating RY(θ)/CZ, two layers) builders producing
//!   native, symbolic circuits plus their cost Hamiltonians;
//! - [`optimizer`]: Gradient Descent via the parameter-shift rule (one
//!   parameter per evaluation — many communication rounds, light
//!   post-processing) and SPSA (two evaluations per iteration regardless
//!   of parameter count), both instrumented with [`OpCounter`] so host
//!   core models can convert their real arithmetic to cycles;
//! - [`cost`]: shot-based cost evaluation with op counting.
//!
//! # Examples
//!
//! ```
//! use qtenon_workloads::{Optimizer, SpsaOptimizer, Workload};
//!
//! let w = Workload::qaoa(8, 5, 42)?;
//! assert_eq!(w.num_params(), 10); // 2 × layers
//! let mut opt = SpsaOptimizer::new(42);
//! let plan = opt.iteration_plan(&w.initial_params);
//! assert_eq!(plan.len(), 2); // SPSA: two evaluations per iteration
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cost;
pub mod graph;
pub mod optimizer;
pub mod workload;

pub use cost::{evaluate_cost, CostEvaluator};
pub use graph::Graph;
pub use optimizer::{AdamOptimizer, GradientDescentOptimizer, Optimizer, SpsaOptimizer};
pub use workload::{Workload, WorkloadKind};

use qtenon_sim_engine::OpCounter;

/// Convenience alias used throughout: a parameter vector.
pub type Params = Vec<f64>;

/// Runs `iterations` of an optimizer against an exact evaluation function
/// (used in tests and examples to check optimizers actually descend).
pub fn optimize<F>(
    opt: &mut dyn Optimizer,
    initial: Params,
    iterations: usize,
    mut eval: F,
) -> (Params, f64)
where
    F: FnMut(&[f64]) -> f64,
{
    let mut params = initial;
    let mut ops = OpCounter::new();
    for _ in 0..iterations {
        let plan = opt.iteration_plan(&params);
        let evals: Vec<f64> = plan.iter().map(|p| eval(p)).collect();
        params = opt.update(&params, &plan, &evals, &mut ops);
    }
    let final_cost = eval(&params);
    (params, final_cost)
}
