//! Classical parameter optimizers with operation counting.
//!
//! Two optimizers drive the benchmarks (Section 7.1):
//!
//! - **Gradient Descent (GD)** with the parameter-shift rule: every
//!   iteration evaluates the circuit at `θ ± π/2` for *each* parameter —
//!   2P evaluations, each changing a single parameter. Communication
//!   rounds scale with parameter count, but per-round post-processing is
//!   light.
//! - **SPSA**: every iteration evaluates two simultaneous random
//!   perturbations regardless of parameter count — few communication
//!   rounds, heavier per-round parameter arithmetic.
//!
//! Updates perform their real arithmetic while recording it into an
//! [`OpCounter`]; host core models convert the counts to cycles.

use std::f64::consts::FRAC_PI_2;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qtenon_sim_engine::{OpClass, OpCounter};

use crate::Params;

/// A classical optimizer driving a VQA.
///
/// The contract is iteration-oriented: [`Optimizer::iteration_plan`]
/// names the parameter vectors to evaluate this iteration (each one is a
/// quantum job), then [`Optimizer::update`] consumes the measured costs
/// and produces the next parameter vector.
pub trait Optimizer {
    /// The optimizer's display name.
    fn name(&self) -> &'static str;

    /// Parameter vectors to evaluate this iteration, in dispatch order.
    fn iteration_plan(&mut self, params: &[f64]) -> Vec<Params>;

    /// Consumes evaluation results (aligned with the plan) and returns
    /// updated parameters, recording host arithmetic into `ops`.
    fn update(
        &mut self,
        params: &[f64],
        plan: &[Params],
        evals: &[f64],
        ops: &mut OpCounter,
    ) -> Params;

    /// Whether each evaluation differs from the previous one in at most
    /// one parameter (true for parameter-shift GD) — the property that
    /// makes Qtenon's incremental updates cheapest.
    fn is_single_parameter_stepped(&self) -> bool;
}

/// Gradient descent with the parameter-shift rule.
///
/// # Examples
///
/// ```
/// use qtenon_workloads::{GradientDescentOptimizer, Optimizer};
///
/// let mut gd = GradientDescentOptimizer::new(0.1);
/// let plan = gd.iteration_plan(&[0.5, 0.5]);
/// assert_eq!(plan.len(), 4); // 2 shifts × 2 parameters
/// ```
#[derive(Debug, Clone)]
pub struct GradientDescentOptimizer {
    learning_rate: f64,
}

impl GradientDescentOptimizer {
    /// Creates a GD optimizer with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate` is not finite and positive.
    pub fn new(learning_rate: f64) -> Self {
        assert!(
            learning_rate.is_finite() && learning_rate > 0.0,
            "learning rate must be positive"
        );
        GradientDescentOptimizer { learning_rate }
    }

    /// The learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }
}

impl Optimizer for GradientDescentOptimizer {
    fn name(&self) -> &'static str {
        "GD"
    }

    fn iteration_plan(&mut self, params: &[f64]) -> Vec<Params> {
        let mut plan = Vec::with_capacity(2 * params.len());
        for i in 0..params.len() {
            for sign in [1.0, -1.0] {
                let mut shifted = params.to_vec();
                shifted[i] += sign * FRAC_PI_2;
                plan.push(shifted);
            }
        }
        plan
    }

    fn update(
        &mut self,
        params: &[f64],
        plan: &[Params],
        evals: &[f64],
        ops: &mut OpCounter,
    ) -> Params {
        assert_eq!(plan.len(), evals.len(), "plan/evals misaligned");
        assert_eq!(plan.len(), 2 * params.len(), "parameter-shift plan size");
        let mut next = params.to_vec();
        for i in 0..params.len() {
            // Parameter-shift gradient: (f(θ+π/2) − f(θ−π/2)) / 2.
            let grad = (evals[2 * i] - evals[2 * i + 1]) / 2.0;
            next[i] -= self.learning_rate * grad;
            // sub, div, mul, sub + the loads/stores around them.
            ops.record(OpClass::FpAlu, 3);
            ops.record(OpClass::FpComplex, 1);
            ops.record(OpClass::Mem, 4);
            ops.record(OpClass::IntAlu, 2);
            ops.record(OpClass::Branch, 1);
        }
        next
    }

    fn is_single_parameter_stepped(&self) -> bool {
        true
    }
}

/// Simultaneous Perturbation Stochastic Approximation.
///
/// # Examples
///
/// ```
/// use qtenon_workloads::{Optimizer, SpsaOptimizer};
///
/// let mut spsa = SpsaOptimizer::new(7);
/// let plan = spsa.iteration_plan(&[0.1; 30]);
/// assert_eq!(plan.len(), 2); // independent of parameter count
/// ```
#[derive(Debug, Clone)]
pub struct SpsaOptimizer {
    rng: StdRng,
    /// Step-size coefficient `a`.
    a: f64,
    /// Perturbation magnitude `c`.
    c: f64,
    /// Iteration counter for gain decay.
    k: u64,
    /// The perturbation used by the outstanding plan.
    delta: Vec<f64>,
}

impl SpsaOptimizer {
    /// Creates an SPSA optimizer with standard gains and a seeded RNG.
    pub fn new(seed: u64) -> Self {
        SpsaOptimizer {
            rng: StdRng::seed_from_u64(seed),
            a: 0.2,
            c: 0.2,
            k: 0,
            delta: Vec::new(),
        }
    }

    fn gains(&self) -> (f64, f64) {
        // Standard SPSA decay schedules.
        let ak = self.a / (self.k as f64 + 1.0).powf(0.602);
        let ck = self.c / (self.k as f64 + 1.0).powf(0.101);
        (ak, ck)
    }
}

impl Optimizer for SpsaOptimizer {
    fn name(&self) -> &'static str {
        "SPSA"
    }

    fn iteration_plan(&mut self, params: &[f64]) -> Vec<Params> {
        let (_, ck) = self.gains();
        self.delta = (0..params.len())
            .map(|_| if self.rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect();
        let plus: Params = params
            .iter()
            .zip(&self.delta)
            .map(|(p, d)| p + ck * d)
            .collect();
        let minus: Params = params
            .iter()
            .zip(&self.delta)
            .map(|(p, d)| p - ck * d)
            .collect();
        vec![plus, minus]
    }

    fn update(
        &mut self,
        params: &[f64],
        plan: &[Params],
        evals: &[f64],
        ops: &mut OpCounter,
    ) -> Params {
        assert_eq!(plan.len(), 2, "SPSA evaluates exactly two points");
        assert_eq!(evals.len(), 2, "SPSA needs two results");
        let (ak, ck) = self.gains();
        let diff = evals[0] - evals[1];
        ops.record(OpClass::FpAlu, 1);
        let next = params
            .iter()
            .zip(&self.delta)
            .map(|(p, d)| {
                // ghat_i = diff / (2 c_k d_i); θ_i ← θ_i − a_k ghat_i.
                let ghat = diff / (2.0 * ck * d);
                ops.record(OpClass::FpAlu, 3);
                ops.record(OpClass::FpComplex, 1);
                ops.record(OpClass::Mem, 3);
                ops.record(OpClass::IntAlu, 2);
                ops.record(OpClass::Branch, 1);
                p - ak * ghat
            })
            .collect();
        self.k += 1;
        next
    }

    fn is_single_parameter_stepped(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize;

    /// A smooth convex test function: Σ (θ_i − 1)².
    fn quadratic(params: &[f64]) -> f64 {
        params.iter().map(|p| (p - 1.0) * (p - 1.0)).sum()
    }

    #[test]
    fn gd_plan_shape_and_single_parameter_property() {
        let mut gd = GradientDescentOptimizer::new(0.1);
        let params = vec![0.0, 0.5, 1.0];
        let plan = gd.iteration_plan(&params);
        assert_eq!(plan.len(), 6);
        // Each plan entry differs from base in exactly one coordinate.
        for p in &plan {
            let diffs = p
                .iter()
                .zip(&params)
                .filter(|(a, b)| (*a - *b).abs() > 1e-12)
                .count();
            assert_eq!(diffs, 1);
        }
        assert!(gd.is_single_parameter_stepped());
    }

    #[test]
    fn gd_descends_quadratic() {
        let mut gd = GradientDescentOptimizer::new(0.2);
        let start = vec![3.0, -2.0];
        let initial_cost = quadratic(&start);
        let (_, final_cost) = optimize(&mut gd, start, 30, quadratic);
        assert!(final_cost < initial_cost / 100.0, "final={final_cost}");
    }

    #[test]
    fn spsa_descends_quadratic() {
        let mut spsa = SpsaOptimizer::new(3);
        let start = vec![3.0, -2.0, 1.5, 0.0];
        let initial_cost = quadratic(&start);
        let (_, final_cost) = optimize(&mut spsa, start, 200, quadratic);
        assert!(final_cost < initial_cost / 10.0, "final={final_cost}");
    }

    #[test]
    fn spsa_plan_is_two_full_perturbations() {
        let mut spsa = SpsaOptimizer::new(1);
        let params = vec![0.5; 10];
        let plan = spsa.iteration_plan(&params);
        assert_eq!(plan.len(), 2);
        // Every coordinate perturbed, symmetric about base.
        for i in 0..10 {
            assert!((plan[0][i] - params[i]).abs() > 1e-9);
            assert!(((plan[0][i] + plan[1][i]) / 2.0 - params[i]).abs() < 1e-12);
        }
        assert!(!spsa.is_single_parameter_stepped());
    }

    #[test]
    fn spsa_is_deterministic_per_seed() {
        let mut a = SpsaOptimizer::new(5);
        let mut b = SpsaOptimizer::new(5);
        assert_eq!(a.iteration_plan(&[0.1; 4]), b.iteration_plan(&[0.1; 4]));
    }

    #[test]
    fn updates_record_host_ops() {
        let mut ops = OpCounter::new();
        let mut gd = GradientDescentOptimizer::new(0.1);
        let params = vec![0.0; 8];
        let plan = gd.iteration_plan(&params);
        let evals = vec![0.0; plan.len()];
        gd.update(&params, &plan, &evals, &mut ops);
        assert!(ops.total() > 0);
        assert_eq!(ops.get(OpClass::FpComplex), 8);
    }

    #[test]
    fn spsa_gains_decay() {
        let mut spsa = SpsaOptimizer::new(0);
        let (a0, c0) = spsa.gains();
        let params = vec![0.0; 2];
        for _ in 0..10 {
            let plan = spsa.iteration_plan(&params);
            let mut ops = OpCounter::new();
            spsa.update(&params, &plan, &[0.1, 0.2], &mut ops);
        }
        let (a10, c10) = spsa.gains();
        assert!(a10 < a0);
        assert!(c10 < c0);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn bad_learning_rate_panics() {
        let _ = GradientDescentOptimizer::new(-1.0);
    }
}

/// Adam on parameter-shift gradients (an "extension" optimizer beyond the
/// paper's two: same 2P-evaluation plan as [`GradientDescentOptimizer`],
/// with per-parameter adaptive moments in the update).
#[derive(Debug, Clone)]
pub struct AdamOptimizer {
    learning_rate: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl AdamOptimizer {
    /// Creates an Adam optimizer with standard moment decays
    /// (β₁ = 0.9, β₂ = 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate` is not finite and positive.
    pub fn new(learning_rate: f64) -> Self {
        assert!(
            learning_rate.is_finite() && learning_rate > 0.0,
            "learning rate must be positive"
        );
        AdamOptimizer {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }
}

impl Optimizer for AdamOptimizer {
    fn name(&self) -> &'static str {
        "Adam"
    }

    fn iteration_plan(&mut self, params: &[f64]) -> Vec<Params> {
        // Same parameter-shift plan as plain GD.
        let mut plan = Vec::with_capacity(2 * params.len());
        for i in 0..params.len() {
            for sign in [1.0, -1.0] {
                let mut shifted = params.to_vec();
                shifted[i] += sign * FRAC_PI_2;
                plan.push(shifted);
            }
        }
        plan
    }

    fn update(
        &mut self,
        params: &[f64],
        plan: &[Params],
        evals: &[f64],
        ops: &mut OpCounter,
    ) -> Params {
        assert_eq!(plan.len(), evals.len(), "plan/evals misaligned");
        assert_eq!(plan.len(), 2 * params.len(), "parameter-shift plan size");
        if self.m.len() != params.len() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let mut next = params.to_vec();
        for i in 0..params.len() {
            let grad = (evals[2 * i] - evals[2 * i + 1]) / 2.0;
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grad;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grad * grad;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            next[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
            // FMA-heavy update: ~10 fp ops + sqrt/div + loads/stores.
            ops.record(OpClass::FpAlu, 10);
            ops.record(OpClass::FpComplex, 2);
            ops.record(OpClass::Mem, 8);
            ops.record(OpClass::IntAlu, 3);
            ops.record(OpClass::Branch, 1);
        }
        next
    }

    fn is_single_parameter_stepped(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod adam_tests {
    use super::*;
    use crate::optimize;

    fn quadratic(params: &[f64]) -> f64 {
        params.iter().map(|p| (p - 1.0) * (p - 1.0)).sum()
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut adam = AdamOptimizer::new(0.3);
        let start = vec![4.0, -3.0];
        let initial = quadratic(&start);
        let (_, final_cost) = optimize(&mut adam, start, 60, |p| quadratic(p));
        assert!(final_cost < initial / 50.0, "final={final_cost}");
    }

    #[test]
    fn adam_plan_matches_gd_shape() {
        let mut adam = AdamOptimizer::new(0.1);
        let mut gd = GradientDescentOptimizer::new(0.1);
        let params = vec![0.3; 5];
        assert_eq!(
            adam.iteration_plan(&params).len(),
            gd.iteration_plan(&params).len()
        );
        assert!(adam.is_single_parameter_stepped());
    }

    #[test]
    fn adam_update_costs_more_host_ops_than_gd() {
        let params = vec![0.0; 4];
        let mut adam = AdamOptimizer::new(0.1);
        let plan = adam.iteration_plan(&params);
        let evals = vec![0.5; plan.len()];
        let mut adam_ops = OpCounter::new();
        adam.update(&params, &plan, &evals, &mut adam_ops);
        let mut gd = GradientDescentOptimizer::new(0.1);
        let mut gd_ops = OpCounter::new();
        gd.update(&params, &plan, &evals, &mut gd_ops);
        assert!(adam_ops.total() > gd_ops.total());
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn adam_rejects_bad_rate() {
        let _ = AdamOptimizer::new(f64::NAN);
    }
}
