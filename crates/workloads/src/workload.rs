//! The three benchmark VQAs as reusable workload definitions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use qtenon_quantum::{transpile, Circuit, Hamiltonian, ParamId, PauliTerm, QuantumError};

use crate::graph::Graph;
use crate::Params;

/// Which benchmark algorithm a workload instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Quantum Approximate Optimization Algorithm on MAX-CUT.
    Qaoa,
    /// Variational Quantum Eigensolver on a molecular-stand-in
    /// Hamiltonian.
    Vqe,
    /// Quantum Neural Network with a hardware-efficient ansatz.
    Qnn,
}

impl WorkloadKind {
    /// All benchmark kinds.
    pub const ALL: [WorkloadKind; 3] = [WorkloadKind::Qaoa, WorkloadKind::Vqe, WorkloadKind::Qnn];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Qaoa => "QAOA",
            WorkloadKind::Vqe => "VQE",
            WorkloadKind::Qnn => "QNN",
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A ready-to-run hybrid workload: a native symbolic circuit, its cost
/// Hamiltonian, and a seeded initial parameter vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Which algorithm this is.
    pub kind: WorkloadKind,
    /// The transpiled (native-gate) parameterised circuit, measurements
    /// included.
    pub circuit: Circuit,
    /// The cost observable the classical side minimises.
    pub hamiltonian: Hamiltonian,
    /// Seeded starting parameters.
    pub initial_params: Params,
}

impl Workload {
    /// Number of qubits.
    pub fn n_qubits(&self) -> u32 {
        self.circuit.n_qubits()
    }

    /// Number of variational parameters.
    pub fn num_params(&self) -> usize {
        self.circuit.num_params()
    }

    /// QAOA on MAX-CUT over the deterministic 3-regular graph family,
    /// with the standard alternating ansatz and `layers` layers
    /// (Section 7.1 uses five).
    ///
    /// Parameters are ordered `[γ₁…γ_p, β₁…β_p]`; each cost rotation is
    /// `2γ`-scaled and each mixer rotation `2β`-scaled, so one register
    /// slot per layer per role suffices under Qtenon compilation.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError`] if circuit construction fails (it cannot
    /// for valid `n`/`layers`).
    pub fn qaoa(n_qubits: u32, layers: u32, seed: u64) -> Result<Self, QuantumError> {
        let graph = if n_qubits.is_multiple_of(2) && n_qubits >= 4 {
            Graph::circulant_3_regular(n_qubits)
        } else {
            Graph::ring(n_qubits.max(3))
        };
        Self::qaoa_on_graph(&graph, layers, seed)
    }

    /// QAOA on an explicit graph.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError`] if circuit construction fails.
    pub fn qaoa_on_graph(graph: &Graph, layers: u32, seed: u64) -> Result<Self, QuantumError> {
        let n = graph.n_vertices();
        let mut c = Circuit::new(n);
        // Uniform superposition.
        for q in 0..n {
            c.h(q);
        }
        for layer in 0..layers {
            let gamma = ParamId::new(layer);
            let beta = ParamId::new(layers + layer);
            // Cost unitary: exp(-iγ w Z_u Z_v) per edge via CX·RZ(2γw)·CX,
            // scheduled matching-by-matching so disjoint edges parallelise.
            for group in graph.matchings() {
                for (u, v, w) in group {
                    c.cx(u, v);
                    c.rz_scaled_param(v, gamma, 2.0 * w);
                    c.cx(u, v);
                }
            }
            // Mixer: RX(2β) per qubit.
            for q in 0..n {
                c.rx_scaled_param(q, beta, 2.0);
            }
        }
        c.measure_all();
        let circuit = transpile::to_native(&c)?;
        let hamiltonian = Hamiltonian::maxcut(n, graph.edges());
        let initial_params = seeded_params(2 * layers as usize, seed);
        Ok(Workload {
            kind: WorkloadKind::Qaoa,
            circuit,
            hamiltonian,
            initial_params,
        })
    }

    /// VQE with a hardware-efficient ansatz: `layers` rounds of
    /// per-qubit RY(θ) followed by a CZ entangling chain, over the
    /// Ising-encoded molecular Hamiltonian (qubits = spin-orbitals).
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError`] if circuit construction fails.
    pub fn vqe(n_qubits: u32, seed: u64) -> Result<Self, QuantumError> {
        Self::vqe_with_layers(n_qubits, 3, seed)
    }

    /// VQE with an explicit ansatz depth.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError`] if circuit construction fails.
    pub fn vqe_with_layers(n_qubits: u32, layers: u32, seed: u64) -> Result<Self, QuantumError> {
        let mut c = Circuit::new(n_qubits);
        let mut param = 0u32;
        for layer in 0..=layers {
            for q in 0..n_qubits {
                c.ry_param(q, ParamId::new(param));
                param += 1;
            }
            if layer < layers {
                brick_entangle(&mut c, n_qubits);
            }
        }
        c.measure_all();
        let circuit = transpile::to_native(&c)?;
        let hamiltonian = Hamiltonian::molecular(n_qubits, seed);
        let initial_params = seeded_params(param as usize, seed);
        Ok(Workload {
            kind: WorkloadKind::Vqe,
            circuit,
            hamiltonian,
            initial_params,
        })
    }

    /// QNN through a hardware-efficient ansatz with alternating RY(θ) and
    /// CZ gates in two layers (Section 7.1), preceded by RX data
    /// encoding of a seeded input sample. The readout observable is
    /// Z on qubit 0 plus a weak regularising field on the rest.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError`] if circuit construction fails.
    pub fn qnn(n_qubits: u32, seed: u64) -> Result<Self, QuantumError> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
        let mut c = Circuit::new(n_qubits);
        // Angle-encode one input sample.
        for q in 0..n_qubits {
            c.rx(q, rng.gen::<f64>() * std::f64::consts::PI);
        }
        let mut param = 0u32;
        for _layer in 0..2 {
            for q in 0..n_qubits {
                c.ry_param(q, ParamId::new(param));
                param += 1;
            }
            brick_entangle(&mut c, n_qubits);
        }
        // Final readout-adjacent rotation layer (more parameters than
        // QAOA/VQE per Section 7.3's communication analysis).
        for q in 0..n_qubits {
            c.ry_param(q, ParamId::new(param));
            param += 1;
        }
        c.measure_all();
        let circuit = transpile::to_native(&c)?;
        let mut terms = vec![PauliTerm::z(0, 1.0)];
        for q in 1..n_qubits {
            terms.push(PauliTerm::z(q, 0.05));
        }
        let hamiltonian = Hamiltonian::new(n_qubits, terms, 0.0);
        let initial_params = seeded_params(param as usize, seed);
        Ok(Workload {
            kind: WorkloadKind::Qnn,
            circuit,
            hamiltonian,
            initial_params,
        })
    }

    /// Builds a workload from an OpenQASM 2.0 program and an explicit
    /// cost Hamiltonian — the entry path for circuits produced by
    /// external front-ends (the baseline flow's Qiskit → OpenQASM route).
    ///
    /// The parsed circuit is transpiled to the native gate set. Since
    /// OpenQASM 2.0 has no symbolic parameters, the workload has none and
    /// suits fixed-circuit sampling rather than variational optimisation.
    ///
    /// # Errors
    ///
    /// Returns the QASM parse error message wrapped in
    /// [`QuantumError::NonNativeGate`]'s sibling — parsing and transpile
    /// failures are both surfaced via [`qtenon_quantum::qasm::QasmError`]
    /// and [`QuantumError`] respectively.
    pub fn from_qasm(
        source: &str,
        hamiltonian: Hamiltonian,
        kind: WorkloadKind,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        let parsed = qtenon_quantum::qasm::parse(source)?;
        if hamiltonian.n_qubits() != parsed.n_qubits() {
            return Err(format!(
                "hamiltonian is {}-qubit but circuit is {}-qubit",
                hamiltonian.n_qubits(),
                parsed.n_qubits()
            )
            .into());
        }
        let circuit = transpile::to_native(&parsed)?;
        Ok(Workload {
            kind,
            circuit,
            hamiltonian,
            initial_params: Vec::new(),
        })
    }

    /// Builds the Section 7.1 benchmark instance of a kind at a width
    /// (QAOA: 5 layers; VQE: 3 layers; QNN: 2 layers).
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError`] if circuit construction fails.
    pub fn benchmark(kind: WorkloadKind, n_qubits: u32, seed: u64) -> Result<Self, QuantumError> {
        match kind {
            WorkloadKind::Qaoa => Self::qaoa(n_qubits, 5, seed),
            WorkloadKind::Vqe => Self::vqe(n_qubits, seed),
            WorkloadKind::Qnn => Self::qnn(n_qubits, seed),
        }
    }
}

/// Brick-pattern CZ entangling layer: even pairs then odd pairs, so the
/// whole layer is two gate slots deep regardless of width (hardware CZs on
/// disjoint qubit pairs run in parallel).
fn brick_entangle(c: &mut Circuit, n_qubits: u32) {
    let mut q = 0;
    while q + 1 < n_qubits {
        c.cz(q, q + 1);
        q += 2;
    }
    let mut q = 1;
    while q + 1 < n_qubits {
        c.cz(q, q + 1);
        q += 2;
    }
}

fn seeded_params(n: usize, seed: u64) -> Params {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen::<f64>() * 0.2 + 0.1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtenon_quantum::transpile::is_native;

    #[test]
    fn qaoa_parameter_count_is_2p() {
        let w = Workload::qaoa(8, 5, 1).unwrap();
        assert_eq!(w.num_params(), 10);
        assert_eq!(w.initial_params.len(), 10);
        assert!(is_native(&w.circuit));
    }

    #[test]
    fn vqe_and_qnn_have_more_params_than_qaoa() {
        // Section 7.3: VQE and QNN require more parameters than QAOA.
        let qaoa = Workload::qaoa(16, 5, 1).unwrap();
        let vqe = Workload::vqe(16, 1).unwrap();
        let qnn = Workload::qnn(16, 1).unwrap();
        assert!(vqe.num_params() > qaoa.num_params());
        assert!(qnn.num_params() > qaoa.num_params());
    }

    #[test]
    fn all_benchmarks_measure_every_qubit() {
        for kind in WorkloadKind::ALL {
            let w = Workload::benchmark(kind, 8, 3).unwrap();
            let measures = w
                .circuit
                .operations()
                .iter()
                .filter(|op| matches!(op.gate, qtenon_quantum::Gate::Measure))
                .count();
            assert_eq!(measures, 8, "{kind}");
        }
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let a = Workload::qnn(6, 9).unwrap();
        let b = Workload::qnn(6, 9).unwrap();
        assert_eq!(a, b);
        let c = Workload::qnn(6, 10).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn qaoa_cost_matches_graph_cut() {
        // The all-alternating bitstring on a ring cuts every edge.
        use qtenon_quantum::BitString;
        let g = Graph::ring(4);
        let w = Workload::qaoa_on_graph(&g, 1, 0).unwrap();
        let mut bits = BitString::zeros(4);
        bits.set(0, true);
        bits.set(2, true);
        assert_eq!(-w.hamiltonian.value_on(&bits), 4.0);
    }

    #[test]
    fn gate_volume_scales_with_qubits() {
        let small = Workload::benchmark(WorkloadKind::Vqe, 8, 0).unwrap();
        let large = Workload::benchmark(WorkloadKind::Vqe, 32, 0).unwrap();
        assert!(large.circuit.operations().len() > 3 * small.circuit.operations().len());
    }

    #[test]
    fn from_qasm_builds_fixed_workload() {
        use qtenon_quantum::PauliTerm;
        let src = "qreg q[2]; h q[0]; cx q[0], q[1]; measure q[0] -> c[0]; measure q[1] -> c[1];";
        let h = Hamiltonian::new(2, vec![PauliTerm::zz(0, 1, 1.0)], 0.0);
        let w = Workload::from_qasm(src, h, WorkloadKind::Qnn).unwrap();
        assert_eq!(w.n_qubits(), 2);
        assert_eq!(w.num_params(), 0);
        assert!(qtenon_quantum::transpile::is_native(&w.circuit));
    }

    #[test]
    fn from_qasm_rejects_width_mismatch() {
        let src = "qreg q[2]; h q[0];";
        let h = Hamiltonian::molecular(3, 0);
        assert!(Workload::from_qasm(src, h, WorkloadKind::Vqe).is_err());
    }

    #[test]
    fn odd_small_qaoa_falls_back_to_ring() {
        let w = Workload::qaoa(5, 2, 0).unwrap();
        assert_eq!(w.n_qubits(), 5);
        assert_eq!(w.num_params(), 4);
    }
}
