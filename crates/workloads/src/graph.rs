//! Problem graphs for MAX-CUT workloads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// An undirected weighted graph on `n` vertices.
///
/// # Examples
///
/// ```
/// use qtenon_workloads::Graph;
///
/// let ring = Graph::ring(6);
/// assert_eq!(ring.edges().len(), 6);
/// assert_eq!(ring.max_degree(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    n: u32,
    edges: Vec<(u32, u32, f64)>,
}

impl Graph {
    /// Creates a graph from an explicit edge list.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a vertex ≥ `n` or is a self-loop.
    pub fn new(n: u32, edges: Vec<(u32, u32, f64)>) -> Self {
        for &(u, v, _) in &edges {
            assert!(u < n && v < n, "edge ({u},{v}) out of range");
            assert_ne!(u, v, "self-loop at {u}");
        }
        Graph { n, edges }
    }

    /// The unit-weight cycle graph C_n.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn ring(n: u32) -> Self {
        assert!(n >= 3, "ring needs at least 3 vertices");
        let edges = (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect();
        Graph { n, edges }
    }

    /// A deterministic 3-regular graph: the ring plus diameter chords.
    /// This is the MAX-CUT instance family used for the QAOA benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n` is odd or `n < 4`.
    pub fn circulant_3_regular(n: u32) -> Self {
        assert!(
            n >= 4 && n.is_multiple_of(2),
            "3-regular circulant needs even n ≥ 4"
        );
        let mut edges: Vec<(u32, u32, f64)> = (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect();
        for i in 0..n / 2 {
            edges.push((i, i + n / 2, 1.0));
        }
        Graph { n, edges }
    }

    /// An Erdős–Rényi graph with edge probability `p` and seeded,
    /// reproducible randomness.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn erdos_renyi(n: u32, p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen::<f64>() < p {
                    edges.push((u, v, 1.0));
                }
            }
        }
        Graph { n, edges }
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> u32 {
        self.n
    }

    /// The edge list.
    pub fn edges(&self) -> &[(u32, u32, f64)] {
        &self.edges
    }

    /// The maximum vertex degree.
    pub fn max_degree(&self) -> usize {
        let mut deg = vec![0usize; self.n as usize];
        for &(u, v, _) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        deg.into_iter().max().unwrap_or(0)
    }

    /// Greedy edge coloring: partitions the edges into matchings
    /// (vertex-disjoint groups). QAOA cost terms commute, so each
    /// matching's two-qubit interactions run in parallel on hardware —
    /// without this, a ring's edges would serialize into a wavefront.
    pub fn matchings(&self) -> Vec<Vec<(u32, u32, f64)>> {
        let mut groups: Vec<Vec<(u32, u32, f64)>> = Vec::new();
        let mut used: Vec<Vec<bool>> = Vec::new();
        for &(u, v, w) in &self.edges {
            let slot = (0..groups.len())
                .find(|&g| !used[g][u as usize] && !used[g][v as usize])
                .unwrap_or_else(|| {
                    groups.push(Vec::new());
                    used.push(vec![false; self.n as usize]);
                    groups.len() - 1
                });
            groups[slot].push((u, v, w));
            used[slot][u as usize] = true;
            used[slot][v as usize] = true;
        }
        groups
    }

    /// The cut value of a vertex bipartition given as a bitmask over
    /// word-packed vertices (vertex `i` on side `bits[i]`).
    pub fn cut_value(&self, side: &[bool]) -> f64 {
        self.edges
            .iter()
            .filter(|&&(u, v, _)| side[u as usize] != side[v as usize])
            .map(|&(_, _, w)| w)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_structure() {
        let g = Graph::ring(5);
        assert_eq!(g.n_vertices(), 5);
        assert_eq!(g.edges().len(), 5);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn circulant_is_3_regular() {
        for n in [4u32, 8, 16, 64] {
            let g = Graph::circulant_3_regular(n);
            assert_eq!(g.edges().len() as u32, n + n / 2);
            assert_eq!(g.max_degree(), 3, "n={n}");
        }
    }

    #[test]
    fn erdos_renyi_is_deterministic() {
        let a = Graph::erdos_renyi(20, 0.3, 7);
        let b = Graph::erdos_renyi(20, 0.3, 7);
        assert_eq!(a, b);
        let c = Graph::erdos_renyi(20, 0.3, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn erdos_renyi_extreme_probabilities() {
        assert!(Graph::erdos_renyi(10, 0.0, 1).edges().is_empty());
        assert_eq!(Graph::erdos_renyi(10, 1.0, 1).edges().len(), 45);
    }

    #[test]
    fn cut_value_counts_crossing_edges() {
        let g = Graph::ring(4);
        // Alternating sides cut every edge.
        assert_eq!(g.cut_value(&[true, false, true, false]), 4.0);
        assert_eq!(g.cut_value(&[true, true, true, true]), 0.0);
        assert_eq!(g.cut_value(&[true, true, false, false]), 2.0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let _ = Graph::new(3, vec![(1, 1, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "even n")]
    fn odd_circulant_rejected() {
        let _ = Graph::circulant_3_regular(5);
    }
}
