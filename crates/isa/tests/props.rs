//! Property-based tests for the ISA layer: every instruction survives the
//! full RoCC encode → 32-bit word → decode → disassemble → re-parse
//! pipeline, operand packing is a bijection up to its documented
//! saturation, and the QCC layout's segment/chunk addressing inverts
//! exactly.

use proptest::prelude::*;

use qtenon_isa::instr::{pack_len_addr, unpack_len_addr, MAX_TRANSFER_LEN};
use qtenon_isa::qaddress::QADDRESS_MASK;
use qtenon_isa::{
    EncodedInstruction, Instruction, IsaError, QAddress, QccLayout, QubitId, RoccWord, Segment,
};

/// Any valid 39-bit quantum address.
fn arb_qaddr() -> impl Strategy<Value = QAddress> {
    (0u64..=QADDRESS_MASK).prop_map(|raw| QAddress::new(raw).expect("masked raw is valid"))
}

/// Any of the five instructions with representable operands: addresses in
/// the 39-bit space, transfer lengths within the 25-bit `rs2` field.
fn arb_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (arb_qaddr(), any::<u32>())
            .prop_map(|(qaddr, value)| Instruction::QUpdate { qaddr, value }),
        (any::<u64>(), arb_qaddr(), 0u64..=MAX_TRANSFER_LEN).prop_map(
            |(classical_addr, qaddr, length)| Instruction::QSet {
                classical_addr,
                qaddr,
                length,
            }
        ),
        (any::<u64>(), arb_qaddr(), 0u64..=MAX_TRANSFER_LEN).prop_map(
            |(classical_addr, qaddr, length)| Instruction::QAcquire {
                classical_addr,
                qaddr,
                length,
            }
        ),
        (arb_qaddr(), any::<u64>()).prop_map(|(qaddr, length)| Instruction::QGen { qaddr, length }),
        any::<u64>().prop_map(|shots| Instruction::QRun { shots }),
    ]
}

proptest! {
    /// Semantic → RoCC registers → 32-bit word bits → decoded word →
    /// semantic: the full hardware encode/decode pipeline is lossless for
    /// every representable instruction.
    #[test]
    fn rocc_encode_decode_round_trips(instr in arb_instruction()) {
        let enc = instr.encode();
        let bits = enc.word.encode();
        let word = RoccWord::decode(bits).expect("own encoding decodes");
        prop_assert_eq!(word, enc.word);
        let redecoded = Instruction::decode(&EncodedInstruction {
            word,
            rs1_value: enc.rs1_value,
            rs2_value: enc.rs2_value,
        })
        .expect("own encoding decodes");
        prop_assert_eq!(redecoded, instr);
    }

    /// Decoded instructions disassemble to text that re-parses to the
    /// same instruction: the assembler and `Display` stay in sync.
    #[test]
    fn disassembly_reparses_to_the_same_instruction(instr in arb_instruction()) {
        let decoded = Instruction::decode(&instr.encode()).expect("decodes");
        let text = decoded.to_string();
        let reparsed = Instruction::parse_asm(&text)
            .unwrap_or_else(|e| panic!("{text:?} failed to re-parse: {e}"));
        prop_assert_eq!(reparsed, decoded);
    }

    /// `pack_len_addr`/`unpack_len_addr` invert exactly for in-range
    /// lengths and saturate (never corrupt the address) beyond the 25-bit
    /// field.
    #[test]
    fn len_addr_packing_inverts_and_saturates(
        length in any::<u64>(),
        qaddr in arb_qaddr(),
    ) {
        let (len, addr) = unpack_len_addr(pack_len_addr(length, qaddr)).expect("unpacks");
        prop_assert_eq!(len, length.min(MAX_TRANSFER_LEN));
        prop_assert_eq!(addr, qaddr);
    }

    /// Raw `rs2` values beyond the address space are rejected, never
    /// silently wrapped.
    #[test]
    fn oversized_raw_addresses_rejected(raw in QADDRESS_MASK + 1..u64::MAX) {
        prop_assert!(matches!(
            QAddress::new(raw),
            Err(IsaError::AddressOutOfRange { .. })
        ));
    }

    /// Per-qubit chunk addressing round-trips through `decode` for every
    /// in-range (qubit, entry) pair in the per-qubit segments.
    #[test]
    fn per_qubit_chunk_addressing_round_trips(
        n_qubits in 1u32..128,
        qubit_sel in any::<u32>(),
        entry_sel in any::<u64>(),
    ) {
        let layout = QccLayout::for_qubits(n_qubits).expect("layout");
        let qubit = QubitId::new(qubit_sel % n_qubits);
        for (segment, per_qubit) in [
            (Segment::Program, layout.program_entries_per_qubit()),
            (Segment::Pulse, layout.pulse_entries_per_qubit()),
        ] {
            let entry = entry_sel % per_qubit;
            let addr = match segment {
                Segment::Program => layout.program_entry(qubit, entry),
                _ => layout.pulse_entry(qubit, entry),
            }
            .expect("in-range entry");
            let d = layout.decode(addr).expect("mapped address decodes");
            prop_assert_eq!(d.segment, segment);
            prop_assert_eq!(d.qubit, Some(qubit));
            prop_assert_eq!(d.entry, entry);
        }
    }

    /// Shared-segment addressing (`.measure`, `.regfile`) round-trips and
    /// reports no owning qubit.
    #[test]
    fn shared_segment_addressing_round_trips(
        n_qubits in 1u32..128,
        entry_sel in any::<u64>(),
    ) {
        let layout = QccLayout::for_qubits(n_qubits).expect("layout");
        for (segment, entries) in [
            (Segment::Measure, layout.measure_entries()),
            (Segment::Regfile, layout.regfile_entries()),
        ] {
            let entry = entry_sel % entries;
            let addr = match segment {
                Segment::Measure => layout.measure_entry(entry),
                _ => layout.regfile_entry(entry),
            }
            .expect("in-range entry");
            let d = layout.decode(addr).expect("mapped address decodes");
            prop_assert_eq!(d.segment, segment);
            prop_assert_eq!(d.qubit, None);
            prop_assert_eq!(d.entry, entry);
        }
    }

    /// Segments never overlap: each segment's span ends at or before the
    /// next segment's base, for any qubit count.
    #[test]
    fn segments_never_overlap(n_qubits in 1u32..256) {
        let layout = QccLayout::for_qubits(n_qubits).expect("layout");
        let mut spans: Vec<(u64, u64)> = Segment::ALL
            .iter()
            .map(|&s| {
                let base = layout.segment_base(s);
                (base, base + layout.segment_entries(s))
            })
            .collect();
        spans.sort_unstable();
        for pair in spans.windows(2) {
            prop_assert!(
                pair[0].1 <= pair[1].0,
                "segment spans overlap: {:?}",
                pair
            );
        }
        prop_assert!(spans.last().unwrap().1 <= QADDRESS_MASK);
    }
}
