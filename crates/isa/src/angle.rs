//! Fixed-point rotation-angle encoding.
//!
//! Program entries carry gate parameters in a 27-bit `data` field and the
//! register file stores them in 32-bit entries; the skip lookup table keys
//! its cache on a 20-bit quantized tag plus a 7-bit index derived from the
//! parameter (Fig. 7). [`EncodedAngle`] is the shared fixed-point format:
//! an angle is reduced modulo 2π and scaled to 27 bits, so one code step is
//! 2π/2²⁷ ≈ 4.7×10⁻⁸ rad — far below any physically meaningful pulse
//! distinction.

use std::f64::consts::TAU;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Bit width of the encoded angle (the `.program` entry `data` field).
pub const ANGLE_BITS: u32 = 27;

/// Number of representable angle codes.
pub const ANGLE_CODES: u64 = 1 << ANGLE_BITS;

/// Bit width of the SLT tag derived from an encoded angle.
pub const SLT_TAG_BITS: u32 = 20;

/// Bit width of the SLT index derived from an encoded angle (Fig. 7's
/// truncated 3-bit type + 4-bit data concatenation).
pub const SLT_INDEX_BITS: u32 = 7;

/// A rotation angle in the 27-bit fixed-point hardware format.
///
/// # Examples
///
/// ```
/// use std::f64::consts::PI;
/// use qtenon_isa::EncodedAngle;
///
/// let a = EncodedAngle::from_radians(PI / 2.0);
/// assert!((a.to_radians() - PI / 2.0).abs() < 1e-6);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct EncodedAngle(u32);

impl EncodedAngle {
    /// The zero angle.
    pub const ZERO: EncodedAngle = EncodedAngle(0);

    /// Encodes an angle in radians, reducing modulo 2π.
    ///
    /// NaN and infinite inputs are encoded as zero: the hardware has no
    /// representation for them and a zero rotation is the identity.
    pub fn from_radians(theta: f64) -> Self {
        if !theta.is_finite() {
            return EncodedAngle(0);
        }
        let frac = (theta / TAU).rem_euclid(1.0);
        let code = (frac * ANGLE_CODES as f64).round() as u64 % ANGLE_CODES;
        EncodedAngle(code as u32)
    }

    /// Reconstructs the angle in radians, in `[0, 2π)`.
    pub fn to_radians(self) -> f64 {
        self.0 as f64 / ANGLE_CODES as f64 * TAU
    }

    /// The raw 27-bit code.
    pub const fn code(self) -> u32 {
        self.0
    }

    /// Creates an angle directly from a 27-bit code.
    ///
    /// # Panics
    ///
    /// Panics if `code` does not fit in 27 bits.
    pub fn from_code(code: u32) -> Self {
        assert!(
            (code as u64) < ANGLE_CODES,
            "angle code {code:#x} exceeds {ANGLE_BITS} bits"
        );
        EncodedAngle(code)
    }

    /// The 20-bit SLT tag: the most significant 20 bits of the code, i.e.
    /// the parameter quantized to 2π/2²⁰ ≈ 6×10⁻⁶ rad. Pulses whose
    /// parameters agree at this resolution share a tag and therefore share
    /// a cached pulse.
    pub fn slt_tag(self) -> u32 {
        self.0 >> (ANGLE_BITS - SLT_TAG_BITS)
    }

    /// The SLT set index contribution: 4 data bits (Fig. 7 describes them
    /// as "two digits before and after the decimal point"; in the
    /// fixed-point format these are the top 4 code bits).
    pub fn slt_data_bits(self) -> u32 {
        self.0 >> (ANGLE_BITS - 4)
    }
}

impl fmt::Display for EncodedAngle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}rad", self.to_radians())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn round_trip_precision() {
        for theta in [0.0, 0.1, FRAC_PI_2, PI, 4.9, TAU - 1e-6] {
            let enc = EncodedAngle::from_radians(theta);
            assert!(
                (enc.to_radians() - theta).abs() < 1e-6,
                "theta={theta} decoded={}",
                enc.to_radians()
            );
        }
    }

    #[test]
    fn reduces_modulo_tau() {
        let a = EncodedAngle::from_radians(0.5);
        let b = EncodedAngle::from_radians(0.5 + TAU);
        let c = EncodedAngle::from_radians(0.5 - 3.0 * TAU);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn negative_angles_wrap() {
        let a = EncodedAngle::from_radians(-FRAC_PI_2);
        assert!((a.to_radians() - (TAU - FRAC_PI_2)).abs() < 1e-6);
    }

    #[test]
    fn non_finite_encodes_to_zero() {
        assert_eq!(EncodedAngle::from_radians(f64::NAN), EncodedAngle::ZERO);
        assert_eq!(
            EncodedAngle::from_radians(f64::INFINITY),
            EncodedAngle::ZERO
        );
    }

    #[test]
    fn tag_quantizes() {
        // Two angles closer than the tag resolution share a tag...
        let a = EncodedAngle::from_radians(1.0);
        let b = EncodedAngle::from_radians(1.0 + 1e-7);
        assert_eq!(a.slt_tag(), b.slt_tag());
        // ...but well-separated angles do not.
        let c = EncodedAngle::from_radians(1.01);
        assert_ne!(a.slt_tag(), c.slt_tag());
    }

    #[test]
    fn tag_and_code_fit_their_widths() {
        let full = EncodedAngle::from_radians(TAU - 1e-9);
        assert!(full.code() < ANGLE_CODES as u32);
        assert!(full.slt_tag() < (1 << SLT_TAG_BITS));
        assert!(full.slt_data_bits() < 16);
    }

    #[test]
    #[should_panic(expected = "exceeds 27 bits")]
    fn oversized_code_panics() {
        let _ = EncodedAngle::from_code(1 << 27);
    }
}
