//! The packed 65-bit `.program` entry.
//!
//! Each gate of the quantum program is one entry in the owning qubit's
//! `.program` chunk (Fig. 6): `type` (4 b) selects the gate kind, `reg_flag`
//! (1 b) says whether `data` (27 b) is an inline fixed-point angle or a
//! `.regfile` index, `status` (3 b) tracks whether the `qaddr` (30 b) link
//! to a generated pulse is valid, and `qaddr` points into the `.pulse`
//! segment once stage 2/3 of the pipeline has produced the control pulse.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::angle::EncodedAngle;
use crate::{IsaError, QAddress};

/// Gate kinds representable in the 4-bit `type` field.
///
/// The native gate set of the Qtenon chip is `{RX, RY, RZ, CZ}` plus
/// measurement; the transpiler lowers everything else to these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateType {
    /// Rotation about X by the entry's angle.
    Rx,
    /// Rotation about Y by the entry's angle.
    Ry,
    /// Rotation about Z by the entry's angle.
    Rz,
    /// Controlled-Z with the qubit named in the entry data (two-qubit).
    Cz,
    /// Z-basis measurement.
    Measure,
    /// Explicit idle/barrier of one gate slot (used for alignment).
    Idle,
}

impl GateType {
    /// All gate types in encoding order.
    pub const ALL: [GateType; 6] = [
        GateType::Rx,
        GateType::Ry,
        GateType::Rz,
        GateType::Cz,
        GateType::Measure,
        GateType::Idle,
    ];

    /// The 4-bit hardware encoding.
    pub fn encode(self) -> u8 {
        match self {
            GateType::Rx => 0,
            GateType::Ry => 1,
            GateType::Rz => 2,
            GateType::Cz => 3,
            GateType::Measure => 4,
            GateType::Idle => 5,
        }
    }

    /// Decodes a 4-bit `type` field.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::BadEncoding`] for unassigned codes.
    pub fn decode(code: u8) -> Result<Self, IsaError> {
        Self::ALL
            .get(code as usize)
            .copied()
            .ok_or(IsaError::BadEncoding {
                what: "unassigned gate type code",
            })
    }

    /// Whether the gate's `data` field holds a rotation angle (and thus
    /// participates in SLT lookup / pulse generation keyed on parameters).
    pub fn is_parameterised(self) -> bool {
        matches!(self, GateType::Rx | GateType::Ry | GateType::Rz)
    }

    /// The 3 type bits used in the SLT index (Fig. 7 truncates the 4-bit
    /// type to 3 bits).
    pub fn slt_type_bits(self) -> u32 {
        (self.encode() & 0b111) as u32
    }
}

impl fmt::Display for GateType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateType::Rx => "RX",
            GateType::Ry => "RY",
            GateType::Rz => "RZ",
            GateType::Cz => "CZ",
            GateType::Measure => "MEASURE",
            GateType::Idle => "IDLE",
        };
        f.write_str(s)
    }
}

/// The `status` field of a program entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EntryStatus {
    /// The `qaddr` link is invalid; the pulse has not been generated.
    #[default]
    Invalid,
    /// A pulse generation for this entry is in flight.
    Pending,
    /// `qaddr` points at a valid pulse in the `.pulse` segment.
    PulseReady,
}

impl EntryStatus {
    /// The 3-bit hardware encoding.
    pub fn encode(self) -> u8 {
        match self {
            EntryStatus::Invalid => 0,
            EntryStatus::Pending => 1,
            EntryStatus::PulseReady => 2,
        }
    }

    /// Decodes a 3-bit `status` field.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::BadEncoding`] for unassigned codes.
    pub fn decode(code: u8) -> Result<Self, IsaError> {
        match code {
            0 => Ok(EntryStatus::Invalid),
            1 => Ok(EntryStatus::Pending),
            2 => Ok(EntryStatus::PulseReady),
            _ => Err(IsaError::BadEncoding {
                what: "unassigned entry status code",
            }),
        }
    }
}

/// What the 27-bit `data` field of an entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntryData {
    /// An inline fixed-point angle (for `reg_flag = 0` rotations).
    Angle(EncodedAngle),
    /// A `.regfile` index (for `reg_flag = 1`: the parameter is fetched
    /// from the register file at pipeline stage 2, enabling `q_update`).
    RegIndex(u32),
    /// A partner qubit index (for two-qubit gates).
    Partner(u32),
    /// No payload (measure/idle).
    None,
}

/// A decoded 65-bit `.program` entry.
///
/// # Examples
///
/// ```
/// use qtenon_isa::{EncodedAngle, GateType, ProgramEntry};
///
/// let entry = ProgramEntry::rotation(GateType::Ry, EncodedAngle::from_radians(1.0));
/// let packed = entry.pack();
/// assert_eq!(ProgramEntry::unpack(packed)?, entry);
/// # Ok::<(), qtenon_isa::IsaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramEntry {
    /// Gate kind.
    pub gate: GateType,
    /// Whether `data` is a register-file index.
    pub reg_flag: bool,
    /// Raw 27-bit data field.
    pub data: u32,
    /// Pulse-link status.
    pub status: EntryStatus,
    /// Link into the `.pulse` segment (meaningful when status is
    /// `PulseReady`; the 30-bit field addresses within the pulse segment).
    pub qaddr: u32,
}

const DATA_BITS: u32 = 27;
const QADDR_FIELD_BITS: u32 = 30;

impl ProgramEntry {
    /// Creates a rotation entry with an inline angle.
    pub fn rotation(gate: GateType, angle: EncodedAngle) -> Self {
        debug_assert!(gate.is_parameterised());
        ProgramEntry {
            gate,
            reg_flag: false,
            data: angle.code(),
            status: EntryStatus::Invalid,
            qaddr: 0,
        }
    }

    /// Creates a rotation entry whose angle lives in the register file.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::FieldOverflow`] if `reg_index` exceeds 27 bits.
    pub fn rotation_from_reg(gate: GateType, reg_index: u32) -> Result<Self, IsaError> {
        check_width("reg_index", reg_index as u64, DATA_BITS)?;
        Ok(ProgramEntry {
            gate,
            reg_flag: true,
            data: reg_index,
            status: EntryStatus::Invalid,
            qaddr: 0,
        })
    }

    /// Creates a CZ entry naming the partner qubit.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::FieldOverflow`] if `partner` exceeds 27 bits.
    pub fn cz(partner: u32) -> Result<Self, IsaError> {
        check_width("partner", partner as u64, DATA_BITS)?;
        Ok(ProgramEntry {
            gate: GateType::Cz,
            reg_flag: false,
            data: partner,
            status: EntryStatus::Invalid,
            qaddr: 0,
        })
    }

    /// Creates a measurement entry.
    pub fn measure() -> Self {
        ProgramEntry {
            gate: GateType::Measure,
            reg_flag: false,
            data: 0,
            status: EntryStatus::Invalid,
            qaddr: 0,
        }
    }

    /// Creates an idle (alignment) entry.
    pub fn idle() -> Self {
        ProgramEntry {
            gate: GateType::Idle,
            reg_flag: false,
            data: 0,
            status: EntryStatus::Invalid,
            qaddr: 0,
        }
    }

    /// Interprets the data field.
    pub fn payload(&self) -> EntryData {
        if self.reg_flag {
            EntryData::RegIndex(self.data)
        } else {
            match self.gate {
                GateType::Rx | GateType::Ry | GateType::Rz => {
                    EntryData::Angle(EncodedAngle::from_code(self.data))
                }
                GateType::Cz => EntryData::Partner(self.data),
                GateType::Measure | GateType::Idle => EntryData::None,
            }
        }
    }

    /// Packs the entry into the 65-bit hardware format (in a `u128`).
    ///
    /// Bit layout, LSB first: `type[3:0]`, `reg_flag[4]`, `data[31:5]`,
    /// `status[34:32]`, `qaddr[64:35]`.
    pub fn pack(&self) -> u128 {
        let mut w: u128 = self.gate.encode() as u128;
        w |= (self.reg_flag as u128) << 4;
        w |= (self.data as u128) << 5;
        w |= (self.status.encode() as u128) << 32;
        w |= (self.qaddr as u128) << 35;
        w
    }

    /// Unpacks a 65-bit entry.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::BadEncoding`] for unassigned type or status
    /// codes, or if bits above the 65-bit field are set.
    pub fn unpack(w: u128) -> Result<Self, IsaError> {
        if w >> 65 != 0 {
            return Err(IsaError::BadEncoding {
                what: "bits set above the 65-bit program entry",
            });
        }
        let gate = GateType::decode((w & 0xf) as u8)?;
        let reg_flag = (w >> 4) & 1 == 1;
        let data = ((w >> 5) & ((1 << DATA_BITS) - 1)) as u32;
        let status = EntryStatus::decode(((w >> 32) & 0b111) as u8)?;
        let qaddr = ((w >> 35) & ((1 << QADDR_FIELD_BITS) - 1)) as u32;
        Ok(ProgramEntry {
            gate,
            reg_flag,
            data,
            status,
            qaddr,
        })
    }

    /// Returns a copy with the pulse link filled in and status set to
    /// `PulseReady`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::FieldOverflow`] if the pulse address needs more
    /// than 30 bits.
    pub fn with_pulse(&self, pulse_addr: QAddress) -> Result<Self, IsaError> {
        check_width("qaddr", pulse_addr.raw(), QADDR_FIELD_BITS)?;
        Ok(ProgramEntry {
            status: EntryStatus::PulseReady,
            qaddr: pulse_addr.raw() as u32,
            ..*self
        })
    }
}

impl fmt::Display for ProgramEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.payload() {
            EntryData::Angle(a) => write!(f, "{}.{}", self.gate, a),
            EntryData::RegIndex(r) => write!(f, "{}.#r{}", self.gate, r),
            EntryData::Partner(p) => write!(f, "{}.q{}", self.gate, p),
            EntryData::None => write!(f, "{}", self.gate),
        }
    }
}

fn check_width(field: &'static str, value: u64, bits: u32) -> Result<(), IsaError> {
    if value >> bits != 0 {
        return Err(IsaError::FieldOverflow { field, value, bits });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_type_round_trip() {
        for g in GateType::ALL {
            assert_eq!(GateType::decode(g.encode()).unwrap(), g);
        }
        assert!(GateType::decode(15).is_err());
    }

    #[test]
    fn status_round_trip() {
        for s in [
            EntryStatus::Invalid,
            EntryStatus::Pending,
            EntryStatus::PulseReady,
        ] {
            assert_eq!(EntryStatus::decode(s.encode()).unwrap(), s);
        }
        assert!(EntryStatus::decode(7).is_err());
    }

    #[test]
    fn pack_unpack_round_trip() {
        let entries = [
            ProgramEntry::rotation(GateType::Rx, EncodedAngle::from_radians(2.2)),
            ProgramEntry::rotation_from_reg(GateType::Rz, 1023).unwrap(),
            ProgramEntry::cz(63).unwrap(),
            ProgramEntry::measure(),
            ProgramEntry::idle(),
        ];
        for e in entries {
            assert_eq!(ProgramEntry::unpack(e.pack()).unwrap(), e);
        }
    }

    #[test]
    fn pack_fits_65_bits() {
        let mut e = ProgramEntry::rotation(GateType::Rz, EncodedAngle::from_code((1 << 27) - 1));
        e.status = EntryStatus::PulseReady;
        e.qaddr = (1 << 30) - 1;
        assert!(e.pack() < (1u128 << 65));
    }

    #[test]
    fn unpack_rejects_stray_bits() {
        assert!(ProgramEntry::unpack(1u128 << 66).is_err());
    }

    #[test]
    fn payload_interpretation() {
        let angle = EncodedAngle::from_radians(0.7);
        assert_eq!(
            ProgramEntry::rotation(GateType::Ry, angle).payload(),
            EntryData::Angle(angle)
        );
        assert_eq!(
            ProgramEntry::rotation_from_reg(GateType::Ry, 5)
                .unwrap()
                .payload(),
            EntryData::RegIndex(5)
        );
        assert_eq!(
            ProgramEntry::cz(3).unwrap().payload(),
            EntryData::Partner(3)
        );
        assert_eq!(ProgramEntry::measure().payload(), EntryData::None);
    }

    #[test]
    fn with_pulse_sets_link() {
        let e = ProgramEntry::rotation(GateType::Rx, EncodedAngle::from_radians(1.0));
        let p = e.with_pulse(QAddress::new(0x1234).unwrap()).unwrap();
        assert_eq!(p.status, EntryStatus::PulseReady);
        assert_eq!(p.qaddr, 0x1234);
        // A pulse address beyond 30 bits cannot be linked.
        assert!(e.with_pulse(QAddress::new(1 << 31).unwrap()).is_err());
    }

    #[test]
    fn reg_index_overflow_rejected() {
        assert!(ProgramEntry::rotation_from_reg(GateType::Rx, 1 << 27).is_err());
        assert!(ProgramEntry::cz(1 << 27).is_err());
    }

    #[test]
    fn display_matches_fig4_style() {
        let e = ProgramEntry::rotation_from_reg(GateType::Ry, 1).unwrap();
        assert_eq!(e.to_string(), "RY.#r1");
    }
}
