//! Disassembly of `.program` chunks into Fig. 4-style listings.
//!
//! The paper's Fig. 4 renders a program chunk as rows of
//! `idx | info | addr` (e.g. `0x0  RY.0.pi/2  p#1`). [`disassemble_chunk`]
//! produces that listing from packed or decoded entries — useful for
//! debugging compiled programs and for golden tests.

use std::fmt::Write;

use crate::program::{EntryStatus, ProgramEntry};
use crate::qaddress::{QccLayout, QubitId};
use crate::IsaError;

/// One disassembled row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisasmRow {
    /// The entry's QAddress.
    pub addr: u64,
    /// Human-readable gate/payload description.
    pub info: String,
    /// Pulse link description (`p#<idx>` or `-`).
    pub pulse: String,
}

/// Disassembles one qubit's program chunk into rows.
///
/// # Errors
///
/// Returns [`IsaError`] if the qubit is out of range for the layout.
///
/// # Examples
///
/// ```
/// use qtenon_isa::{disasm, EncodedAngle, GateType, ProgramEntry, QccLayout, QubitId};
///
/// let layout = QccLayout::for_qubits(4)?;
/// let entries = [ProgramEntry::rotation(GateType::Ry, EncodedAngle::from_radians(1.0))];
/// let rows = disasm::disassemble_chunk(&layout, QubitId::new(1), &entries)?;
/// assert_eq!(rows[0].addr, 0x400);
/// assert!(rows[0].info.starts_with("RY"));
/// # Ok::<(), qtenon_isa::IsaError>(())
/// ```
pub fn disassemble_chunk(
    layout: &QccLayout,
    qubit: QubitId,
    entries: &[ProgramEntry],
) -> Result<Vec<DisasmRow>, IsaError> {
    let base = layout.program_entry(qubit, 0)?;
    let pulse_base = layout.segment_base(crate::Segment::Pulse);
    Ok(entries
        .iter()
        .enumerate()
        .map(|(i, e)| DisasmRow {
            addr: base.raw() + i as u64,
            info: e.to_string(),
            pulse: match e.status {
                EntryStatus::PulseReady => {
                    format!("p#{}", (e.qaddr as u64).saturating_sub(pulse_base))
                }
                EntryStatus::Pending => "…".into(),
                EntryStatus::Invalid => "-".into(),
            },
        })
        .collect())
}

/// Formats rows as an aligned text listing.
pub fn format_listing(rows: &[DisasmRow]) -> String {
    let mut out = String::new();
    let width = rows.iter().map(|r| r.info.len()).max().unwrap_or(4).max(4);
    let _ = writeln!(out, "{:<10}  {:<width$}  {}", "idx", "info", "addr");
    for r in rows {
        let _ = writeln!(out, "{:<#10x}  {:<width$}  {}", r.addr, r.info, r.pulse);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angle::EncodedAngle;
    use crate::program::GateType;
    use crate::QAddress;

    fn layout() -> QccLayout {
        QccLayout::for_qubits(64).unwrap()
    }

    #[test]
    fn rows_carry_chunk_addresses() {
        let entries = [
            ProgramEntry::rotation(GateType::Ry, EncodedAngle::from_radians(1.57)),
            ProgramEntry::cz(5).unwrap(),
            ProgramEntry::measure(),
        ];
        let rows = disassemble_chunk(&layout(), QubitId::new(2), &entries).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].addr, 0x800);
        assert_eq!(rows[2].addr, 0x802);
        assert!(rows[1].info.contains("CZ"));
        assert_eq!(rows[0].pulse, "-");
    }

    #[test]
    fn linked_entries_show_pulse_index() {
        let l = layout();
        let pulse = l.pulse_entry(QubitId::new(0), 3).unwrap();
        let entry = ProgramEntry::rotation(GateType::Rx, EncodedAngle::from_radians(0.5))
            .with_pulse(QAddress::new(pulse.raw()).unwrap());
        // with_pulse fails for >30-bit addresses; 0x80003 fits.
        let entry = entry.unwrap();
        let rows = disassemble_chunk(&l, QubitId::new(0), &[entry]).unwrap();
        assert_eq!(rows[0].pulse, "p#3");
    }

    #[test]
    fn listing_is_aligned_and_headed() {
        let entries = [ProgramEntry::measure()];
        let rows = disassemble_chunk(&layout(), QubitId::new(0), &entries).unwrap();
        let text = format_listing(&rows);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("idx"));
        assert!(lines[1].starts_with("0x0"));
        assert!(lines[1].contains("MEASURE"));
    }

    #[test]
    fn out_of_range_qubit_rejected() {
        assert!(disassemble_chunk(&layout(), QubitId::new(64), &[]).is_err());
    }

    #[test]
    fn empty_chunk_gives_header_only() {
        let rows = disassemble_chunk(&layout(), QubitId::new(0), &[]).unwrap();
        assert!(rows.is_empty());
        let text = format_listing(&rows);
        assert_eq!(text.lines().count(), 1);
    }
}
