//! The 32-bit RoCC instruction word (Fig. 8a).
//!
//! Qtenon instructions use the Rocket Custom Coprocessor (RoCC) extension
//! format on the `custom-0` opcode: the 7-bit `funct7` field selects one of
//! the five Qtenon operations, `rs1`/`rs2` name the source registers whose
//! *values* carry the operands, and `xd`/`xs1`/`xs2` flag which registers
//! are live.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::IsaError;

/// The RISC-V `custom-0` major opcode used by RoCC.
pub const CUSTOM0_OPCODE: u32 = 0x0B;

/// The Qtenon operation selected by the `funct7` field (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoccFunct {
    /// `q_update`: host register → quantum controller cache.
    QUpdate,
    /// `q_set`: host memory → quantum controller cache.
    QSet,
    /// `q_acquire`: quantum controller cache → host memory.
    QAcquire,
    /// `q_gen`: generate pulses for a program range.
    QGen,
    /// `q_run`: run the quantum program for a number of shots.
    QRun,
}

impl RoccFunct {
    /// All functs in encoding order.
    pub const ALL: [RoccFunct; 5] = [
        RoccFunct::QUpdate,
        RoccFunct::QSet,
        RoccFunct::QAcquire,
        RoccFunct::QGen,
        RoccFunct::QRun,
    ];

    /// The 7-bit `funct7` encoding.
    pub fn encode(self) -> u8 {
        match self {
            RoccFunct::QUpdate => 0,
            RoccFunct::QSet => 1,
            RoccFunct::QAcquire => 2,
            RoccFunct::QGen => 3,
            RoccFunct::QRun => 4,
        }
    }

    /// Decodes a `funct7` field.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::BadEncoding`] for unassigned codes.
    pub fn decode(code: u8) -> Result<Self, IsaError> {
        Self::ALL
            .get(code as usize)
            .copied()
            .ok_or(IsaError::BadEncoding {
                what: "unassigned RoCC funct7",
            })
    }

    /// The instruction mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            RoccFunct::QUpdate => "q_update",
            RoccFunct::QSet => "q_set",
            RoccFunct::QAcquire => "q_acquire",
            RoccFunct::QGen => "q_gen",
            RoccFunct::QRun => "q_run",
        }
    }
}

impl fmt::Display for RoccFunct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A decoded 32-bit RoCC instruction word.
///
/// Field layout (standard RoCC):
/// `inst[6:0]` opcode, `inst[11:7]` rd, `inst[12]` xs2, `inst[13]` xs1,
/// `inst[14]` xd, `inst[19:15]` rs1, `inst[24:20]` rs2, `inst[31:25]`
/// funct7.
///
/// # Examples
///
/// ```
/// use qtenon_isa::{RoccFunct, RoccWord};
///
/// let w = RoccWord::new(RoccFunct::QRun, 0, 5, 0, false, true, false);
/// let bits = w.encode();
/// assert_eq!(RoccWord::decode(bits)?, w);
/// # Ok::<(), qtenon_isa::IsaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RoccWord {
    /// The Qtenon operation.
    pub funct: RoccFunct,
    /// Destination register number.
    pub rd: u8,
    /// First source register number.
    pub rs1: u8,
    /// Second source register number.
    pub rs2: u8,
    /// Whether `rd` receives a result.
    pub xd: bool,
    /// Whether `rs1` is read.
    pub xs1: bool,
    /// Whether `rs2` is read.
    pub xs2: bool,
}

impl RoccWord {
    /// Creates a RoCC word from its fields.
    ///
    /// # Panics
    ///
    /// Panics if a register number exceeds 31.
    pub fn new(funct: RoccFunct, rd: u8, rs1: u8, rs2: u8, xd: bool, xs1: bool, xs2: bool) -> Self {
        assert!(
            rd < 32 && rs1 < 32 && rs2 < 32,
            "register number out of range"
        );
        RoccWord {
            funct,
            rd,
            rs1,
            rs2,
            xd,
            xs1,
            xs2,
        }
    }

    /// Encodes to the 32-bit instruction word.
    pub fn encode(&self) -> u32 {
        CUSTOM0_OPCODE
            | (self.rd as u32) << 7
            | (self.xs2 as u32) << 12
            | (self.xs1 as u32) << 13
            | (self.xd as u32) << 14
            | (self.rs1 as u32) << 15
            | (self.rs2 as u32) << 20
            | (self.funct.encode() as u32) << 25
    }

    /// Decodes a 32-bit instruction word.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::BadEncoding`] if the opcode is not `custom-0` or
    /// the funct is unassigned.
    pub fn decode(bits: u32) -> Result<Self, IsaError> {
        if bits & 0x7f != CUSTOM0_OPCODE {
            return Err(IsaError::BadEncoding {
                what: "opcode is not custom-0",
            });
        }
        let funct = RoccFunct::decode((bits >> 25) as u8)?;
        Ok(RoccWord {
            funct,
            rd: ((bits >> 7) & 0x1f) as u8,
            xs2: (bits >> 12) & 1 == 1,
            xs1: (bits >> 13) & 1 == 1,
            xd: (bits >> 14) & 1 == 1,
            rs1: ((bits >> 15) & 0x1f) as u8,
            rs2: ((bits >> 20) & 0x1f) as u8,
        })
    }
}

impl fmt::Display for RoccWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rd=x{} rs1=x{} rs2=x{}",
            self.funct, self.rd, self.rs1, self.rs2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn funct_round_trip() {
        for funct in RoccFunct::ALL {
            assert_eq!(RoccFunct::decode(funct.encode()).unwrap(), funct);
        }
        assert!(RoccFunct::decode(99).is_err());
    }

    #[test]
    fn word_round_trip_all_fields() {
        for funct in RoccFunct::ALL {
            let w = RoccWord::new(funct, 31, 1, 17, true, false, true);
            assert_eq!(RoccWord::decode(w.encode()).unwrap(), w);
        }
    }

    #[test]
    fn encode_uses_custom0() {
        let w = RoccWord::new(RoccFunct::QSet, 0, 10, 11, false, true, true);
        assert_eq!(w.encode() & 0x7f, CUSTOM0_OPCODE);
    }

    #[test]
    fn decode_rejects_wrong_opcode() {
        assert!(matches!(
            RoccWord::decode(0x33), // OP opcode, not custom-0
            Err(IsaError::BadEncoding { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "register number out of range")]
    fn oversized_register_panics() {
        let _ = RoccWord::new(RoccFunct::QRun, 32, 0, 0, false, false, false);
    }

    #[test]
    fn fields_do_not_alias() {
        // Distinct registers land in distinct bit positions.
        let w = RoccWord::new(RoccFunct::QGen, 1, 2, 3, true, true, true);
        let bits = w.encode();
        assert_eq!((bits >> 7) & 0x1f, 1);
        assert_eq!((bits >> 15) & 0x1f, 2);
        assert_eq!((bits >> 20) & 0x1f, 3);
    }
}
