//! Qtenon's extended RISC-V ISA.
//!
//! The paper's key software insight is to treat the quantum program as
//! *computable data* rather than a static instruction list: each gate is one
//! 65-bit program entry stored at a per-qubit **QAddress**, so the qubit
//! index never appears in the instruction stream and single parameters can
//! be updated in place. This crate implements that software-visible layer:
//!
//! - [`qaddress`]: the 39-bit quantum address space and the five-segment ×
//!   per-qubit-chunk 2D layout of the quantum controller cache (Fig. 4,
//!   Table 2);
//! - [`angle`]: the fixed-point rotation-angle encoding shared by program
//!   entries, the register file, and the skip-lookup-table tags;
//! - [`program`]: the packed 65-bit program entry
//!   (`type`/`reg_flag`/`data`/`status`/`qaddr`) and gate-type encoding;
//! - [`rocc`]: the 32-bit RoCC instruction word (Fig. 8a);
//! - [`instr`]: the five Qtenon instructions — `q_update`, `q_set`,
//!   `q_acquire`, `q_gen`, `q_run` — with their operand packing (Fig. 8b),
//!   encode/decode, and a textual assembler.
//!
//! # Examples
//!
//! ```
//! use qtenon_isa::{Instruction, QccLayout, QubitId};
//!
//! let layout = QccLayout::for_qubits(64)?;
//! let target = layout.program_entry(QubitId::new(3), 0)?;
//! let update = Instruction::QUpdate { qaddr: target, value: 0x1234 };
//! let encoded = update.encode();
//! assert_eq!(Instruction::decode(&encoded)?, update);
//! # Ok::<(), qtenon_isa::IsaError>(())
//! ```

pub mod angle;
pub mod disasm;
pub mod instr;
pub mod program;
pub mod qaddress;
pub mod rocc;

pub use angle::EncodedAngle;
pub use instr::{EncodedInstruction, Instruction};
pub use program::{EntryStatus, GateType, ProgramEntry};
pub use qaddress::{QAddress, QccLayout, QubitId, Segment};
pub use rocc::{RoccFunct, RoccWord};

use std::fmt;

/// Errors produced by ISA-level operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// A QAddress fell outside the 39-bit quantum address space or outside
    /// the segment being addressed.
    AddressOutOfRange {
        /// The offending raw address value.
        addr: u64,
        /// Human-readable description of the valid region.
        context: &'static str,
    },
    /// A qubit index exceeded the configured qubit count.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: u32,
        /// The configured number of qubits.
        n_qubits: u32,
    },
    /// A field value did not fit its bit width.
    FieldOverflow {
        /// Name of the field.
        field: &'static str,
        /// The value that did not fit.
        value: u64,
        /// The field width in bits.
        bits: u32,
    },
    /// An instruction word could not be decoded.
    BadEncoding {
        /// Description of what failed to decode.
        what: &'static str,
    },
    /// Assembly text could not be parsed.
    ParseError {
        /// Description of the parse failure.
        message: String,
    },
    /// A layout parameter was invalid (e.g. zero qubits).
    BadLayout {
        /// Description of the invalid configuration.
        message: String,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::AddressOutOfRange { addr, context } => {
                write!(f, "address {addr:#x} out of range for {context}")
            }
            IsaError::QubitOutOfRange { qubit, n_qubits } => {
                write!(f, "qubit {qubit} out of range for {n_qubits}-qubit layout")
            }
            IsaError::FieldOverflow { field, value, bits } => {
                write!(f, "value {value:#x} does not fit {bits}-bit field {field}")
            }
            IsaError::BadEncoding { what } => write!(f, "bad encoding: {what}"),
            IsaError::ParseError { message } => write!(f, "parse error: {message}"),
            IsaError::BadLayout { message } => write!(f, "bad layout: {message}"),
        }
    }
}

impl std::error::Error for IsaError {}
