//! The quantum address space and quantum-controller-cache layout.
//!
//! The quantum controller cache (QCC) is organised as a 2D space (Fig. 4):
//! the first dimension is five *segments* and the second divides each
//! segment into per-qubit *chunks*. A **QAddress** is an entry index inside
//! the 39-bit quantum address space; because each qubit owns a dedicated
//! address range, program entries never need to carry a qubit index — the
//! index is inherent in the address. This is what shrinks a 64-qubit QAOA
//! program from ~3×10⁴ dedicated-ISA instructions to ~285 Qtenon
//! instructions (Table 1).
//!
//! The 64-qubit layout matches the worked example in Fig. 4 of the paper:
//! `.program` qubit 0 occupies `0x0..=0x3ff`, `.regfile` starts at
//! `0x70000`, `.measure` at `0x71000..0x72400`, and `.pulse` qubit 0 at
//! `0x80000..=0x803ff`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::IsaError;

/// Width of the quantum address space in bits (Section 7.5).
pub const QADDRESS_BITS: u32 = 39;

/// Mask selecting the valid QAddress bits.
pub const QADDRESS_MASK: u64 = (1 << QADDRESS_BITS) - 1;

/// Index of a physical qubit managed by the controller.
///
/// # Examples
///
/// ```
/// use qtenon_isa::QubitId;
///
/// let q = QubitId::new(7);
/// assert_eq!(q.index(), 7);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct QubitId(u32);

impl QubitId {
    /// Creates a qubit id from a raw index.
    pub const fn new(index: u32) -> Self {
        QubitId(index)
    }

    /// The raw index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for QubitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<u32> for QubitId {
    fn from(index: u32) -> Self {
        QubitId(index)
    }
}

/// An address in the 39-bit quantum address space.
///
/// A `QAddress` indexes *entries*, not bytes: `.program` entries are 65 bits
/// wide, `.pulse` entries 640 bits, and so on; the controller hardware maps
/// entry indices to SRAM rows.
///
/// # Examples
///
/// ```
/// use qtenon_isa::QAddress;
///
/// let a = QAddress::new(0x8_0000)?;
/// assert_eq!(a.raw(), 0x8_0000);
/// assert_eq!(a.offset(3).unwrap().raw(), 0x8_0003);
/// # Ok::<(), qtenon_isa::IsaError>(())
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct QAddress(u64);

impl QAddress {
    /// Creates a quantum address from a raw value.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::AddressOutOfRange`] if `raw` exceeds the 39-bit
    /// address space.
    pub fn new(raw: u64) -> Result<Self, IsaError> {
        if raw > QADDRESS_MASK {
            return Err(IsaError::AddressOutOfRange {
                addr: raw,
                context: "39-bit quantum address space",
            });
        }
        Ok(QAddress(raw))
    }

    /// The raw 39-bit address value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Creates an address in `const` contexts, masking to the 39-bit
    /// space instead of validating. Prefer [`QAddress::new`] at runtime.
    pub const fn new_unchecked(raw: u64) -> Self {
        QAddress(raw & QADDRESS_MASK)
    }

    /// The address `entries` entries past this one.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::AddressOutOfRange`] on overflow of the address
    /// space.
    pub fn offset(self, entries: u64) -> Result<Self, IsaError> {
        QAddress::new(self.0 + entries)
    }
}

impl fmt::Display for QAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{:#x}", self.0)
    }
}

impl fmt::LowerHex for QAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// The five segments of the quantum controller cache (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Segment {
    /// Quantum program instructions (public).
    Program,
    /// Control pulses for the quantum chip (private).
    Pulse,
    /// Processed readout data (public).
    Measure,
    /// Skip lookup table (private, hardware-managed).
    Slt,
    /// Frequently updated parameters (public).
    Regfile,
}

impl Segment {
    /// All segments in Table 2 order.
    pub const ALL: [Segment; 5] = [
        Segment::Program,
        Segment::Pulse,
        Segment::Measure,
        Segment::Slt,
        Segment::Regfile,
    ];

    /// Whether the segment is accessible to user software.
    ///
    /// `.slt` and `.pulse` are kept private through hardware isolation to
    /// avoid three-way synchronisation between the interdependent
    /// `.program`/`.pulse`/`.slt` segments (Section 5.1).
    pub fn is_public(self) -> bool {
        matches!(self, Segment::Program | Segment::Measure | Segment::Regfile)
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Segment::Program => ".program",
            Segment::Pulse => ".pulse",
            Segment::Measure => ".measure",
            Segment::Slt => ".slt",
            Segment::Regfile => ".regfile",
        };
        f.write_str(name)
    }
}

/// A decoded quantum address: which segment, which qubit chunk (if the
/// segment is per-qubit), and the entry offset within the chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodedAddress {
    /// The segment the address falls in.
    pub segment: Segment,
    /// The owning qubit for per-qubit segments (`.program`, `.pulse`,
    /// `.slt`); `None` for the shared `.regfile` and `.measure` segments.
    pub qubit: Option<QubitId>,
    /// Entry offset within the qubit chunk (or within the shared segment).
    pub entry: u64,
}

/// Geometry of the quantum controller cache for a given qubit count.
///
/// Field defaults follow Table 2 of the paper (64-qubit configuration);
/// entry bit widths are fixed by the hardware formats.
///
/// # Examples
///
/// ```
/// use qtenon_isa::QccLayout;
///
/// let layout = QccLayout::for_qubits(64)?;
/// // Table 2: the 64-qubit configuration totals 5.66 MB.
/// assert_eq!(layout.total_bytes(), 5_935_104);
/// # Ok::<(), qtenon_isa::IsaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QccLayout {
    n_qubits: u32,
    program_entries: u64,
    pulse_entries: u64,
    measure_entries: u64,
    regfile_entries: u64,
    slt_ways: u64,
    slt_entries_per_way: u64,
}

/// `.program` entry width: type(4) + reg_flag(1) + data(27) + status(3) +
/// qaddr(30) bits.
pub const PROGRAM_ENTRY_BITS: u64 = 65;
/// `.pulse` entry width: 10 × 64 bits.
pub const PULSE_ENTRY_BITS: u64 = 640;
/// `.measure` entry width.
pub const MEASURE_ENTRY_BITS: u64 = 64;
/// `.slt` entry width: tag(20) + qaddr(30) + valid(1) + count(5) bits.
pub const SLT_ENTRY_BITS: u64 = 56;
/// `.regfile` entry width.
pub const REGFILE_ENTRY_BITS: u64 = 32;

/// Fixed base of the `.regfile` segment in the 64-qubit map (Fig. 4).
const REGFILE_BASE_64: u64 = 0x70000;
/// Fixed base of the `.measure` segment in the 64-qubit map (Fig. 4).
const MEASURE_BASE_64: u64 = 0x71000;
/// Fixed base of the `.pulse` segment in the 64-qubit map (Fig. 4).
const PULSE_BASE_64: u64 = 0x80000;

impl QccLayout {
    /// Creates the Table 2 layout for `n_qubits` qubits: 1024 program and
    /// pulse entries per qubit, 80 measure entries and 16 registers per
    /// qubit (5120 and 1024 at the paper's 64-qubit design point), and a
    /// 2-way × 128-entry SLT per qubit. Cache size therefore scales
    /// linearly with qubit count as Section 7.5 requires (22.63 MB at 256
    /// qubits).
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::BadLayout`] if `n_qubits` is zero or the layout
    /// would not fit the 39-bit address space.
    pub fn for_qubits(n_qubits: u32) -> Result<Self, IsaError> {
        let n = n_qubits as u64;
        Self::with_geometry(n_qubits, 1024, 1024, 80 * n, 16 * n)
    }

    /// Creates a layout with custom per-qubit program/pulse depths and
    /// shared measure/regfile sizes.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::BadLayout`] for a zero qubit count, zero segment
    /// sizes, or a layout exceeding the 39-bit address space.
    pub fn with_geometry(
        n_qubits: u32,
        program_entries: u64,
        pulse_entries: u64,
        measure_entries: u64,
        regfile_entries: u64,
    ) -> Result<Self, IsaError> {
        if n_qubits == 0 {
            return Err(IsaError::BadLayout {
                message: "layout requires at least one qubit".into(),
            });
        }
        if program_entries == 0 || pulse_entries == 0 || measure_entries == 0 {
            return Err(IsaError::BadLayout {
                message: "segment sizes must be non-zero".into(),
            });
        }
        let layout = QccLayout {
            n_qubits,
            program_entries,
            pulse_entries,
            measure_entries,
            regfile_entries,
            slt_ways: 2,
            slt_entries_per_way: 128,
        };
        let end = layout.segment_base(Segment::Slt)
            + layout.n_qubits as u64 * layout.slt_ways * layout.slt_entries_per_way;
        if end > QADDRESS_MASK {
            return Err(IsaError::BadLayout {
                message: format!("layout end {end:#x} exceeds 39-bit address space"),
            });
        }
        Ok(layout)
    }

    /// The configured number of qubits.
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// Program entries per qubit chunk.
    pub fn program_entries_per_qubit(&self) -> u64 {
        self.program_entries
    }

    /// Pulse entries per qubit chunk.
    pub fn pulse_entries_per_qubit(&self) -> u64 {
        self.pulse_entries
    }

    /// Entries in the shared `.measure` segment.
    pub fn measure_entries(&self) -> u64 {
        self.measure_entries
    }

    /// Entries in the shared `.regfile` segment.
    pub fn regfile_entries(&self) -> u64 {
        self.regfile_entries
    }

    /// SLT associativity (ways per qubit).
    pub fn slt_ways(&self) -> u64 {
        self.slt_ways
    }

    /// SLT entries per way per qubit.
    pub fn slt_entries_per_way(&self) -> u64 {
        self.slt_entries_per_way
    }

    /// Base entry-address of a segment.
    ///
    /// For layouts up to 448 qubits with the default geometry this matches
    /// the Fig. 4 memory map exactly (`.regfile` at `0x70000`, `.measure`
    /// at `0x71000`, `.pulse` at `0x80000`); larger configurations shift
    /// the shared segments upward so chunks never collide.
    pub fn segment_base(&self, segment: Segment) -> u64 {
        let program_span = self.n_qubits as u64 * self.program_entries;
        let regfile_base = REGFILE_BASE_64.max(next_multiple(program_span, 0x1000));
        let measure_base = (regfile_base + self.regfile_entries)
            .max(regfile_base + (MEASURE_BASE_64 - REGFILE_BASE_64));
        let pulse_base =
            PULSE_BASE_64.max(next_multiple(measure_base + self.measure_entries, 0x10000));
        let slt_base = pulse_base + self.n_qubits as u64 * self.pulse_entries;
        match segment {
            Segment::Program => 0,
            Segment::Regfile => regfile_base,
            Segment::Measure => measure_base,
            Segment::Pulse => pulse_base,
            Segment::Slt => slt_base,
        }
    }

    /// Number of entries in a segment (all qubit chunks together).
    pub fn segment_entries(&self, segment: Segment) -> u64 {
        match segment {
            Segment::Program => self.n_qubits as u64 * self.program_entries,
            Segment::Pulse => self.n_qubits as u64 * self.pulse_entries,
            Segment::Measure => self.measure_entries,
            Segment::Regfile => self.regfile_entries,
            Segment::Slt => self.n_qubits as u64 * self.slt_ways * self.slt_entries_per_way,
        }
    }

    /// Size of a segment in bytes (entries × entry width, rounded up to
    /// whole bytes across the segment, matching Table 2's arithmetic).
    pub fn segment_bytes(&self, segment: Segment) -> u64 {
        let bits = match segment {
            Segment::Program => PROGRAM_ENTRY_BITS,
            Segment::Pulse => PULSE_ENTRY_BITS,
            Segment::Measure => MEASURE_ENTRY_BITS,
            Segment::Regfile => REGFILE_ENTRY_BITS,
            Segment::Slt => SLT_ENTRY_BITS,
        };
        (self.segment_entries(segment) * bits).div_ceil(8)
    }

    /// Total quantum controller cache size in bytes (Table 2's 5.66 MB for
    /// the 64-qubit default).
    pub fn total_bytes(&self) -> u64 {
        Segment::ALL.iter().map(|&s| self.segment_bytes(s)).sum()
    }

    /// The address of `entry` within `qubit`'s `.program` chunk.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::QubitOutOfRange`] or
    /// [`IsaError::AddressOutOfRange`] for out-of-range operands.
    pub fn program_entry(&self, qubit: QubitId, entry: u64) -> Result<QAddress, IsaError> {
        self.per_qubit_entry(Segment::Program, self.program_entries, qubit, entry)
    }

    /// The address of `entry` within `qubit`'s `.pulse` chunk.
    ///
    /// # Errors
    ///
    /// Same as [`QccLayout::program_entry`].
    pub fn pulse_entry(&self, qubit: QubitId, entry: u64) -> Result<QAddress, IsaError> {
        self.per_qubit_entry(Segment::Pulse, self.pulse_entries, qubit, entry)
    }

    /// The address of index `entry` in the shared `.regfile` segment.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::AddressOutOfRange`] if `entry` exceeds the
    /// register file size.
    pub fn regfile_entry(&self, entry: u64) -> Result<QAddress, IsaError> {
        if entry >= self.regfile_entries {
            return Err(IsaError::AddressOutOfRange {
                addr: entry,
                context: ".regfile segment",
            });
        }
        QAddress::new(self.segment_base(Segment::Regfile) + entry)
    }

    /// The address of index `entry` in the shared `.measure` segment.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::AddressOutOfRange`] if `entry` exceeds the
    /// measure segment size.
    pub fn measure_entry(&self, entry: u64) -> Result<QAddress, IsaError> {
        if entry >= self.measure_entries {
            return Err(IsaError::AddressOutOfRange {
                addr: entry,
                context: ".measure segment",
            });
        }
        QAddress::new(self.segment_base(Segment::Measure) + entry)
    }

    fn per_qubit_entry(
        &self,
        segment: Segment,
        per_qubit: u64,
        qubit: QubitId,
        entry: u64,
    ) -> Result<QAddress, IsaError> {
        if qubit.index() >= self.n_qubits {
            return Err(IsaError::QubitOutOfRange {
                qubit: qubit.index(),
                n_qubits: self.n_qubits,
            });
        }
        if entry >= per_qubit {
            return Err(IsaError::AddressOutOfRange {
                addr: entry,
                context: "per-qubit chunk",
            });
        }
        QAddress::new(self.segment_base(segment) + qubit.index() as u64 * per_qubit + entry)
    }

    /// Decodes an address into segment, qubit chunk, and entry offset.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::AddressOutOfRange`] for addresses in unmapped
    /// holes between segments.
    pub fn decode(&self, addr: QAddress) -> Result<DecodedAddress, IsaError> {
        let raw = addr.raw();
        // Check segments highest-base-first so each raw address maps to
        // exactly one segment.
        let mut segs: Vec<(Segment, u64, u64)> = Segment::ALL
            .iter()
            .map(|&s| (s, self.segment_base(s), self.segment_entries(s)))
            .collect();
        segs.sort_by_key(|&(_, base, _)| std::cmp::Reverse(base));
        for (seg, base, entries) in segs {
            if raw >= base {
                if raw >= base + entries {
                    return Err(IsaError::AddressOutOfRange {
                        addr: raw,
                        context: "hole between segments",
                    });
                }
                let off = raw - base;
                let (qubit, entry) = match seg {
                    Segment::Program => (
                        Some(QubitId::new((off / self.program_entries) as u32)),
                        off % self.program_entries,
                    ),
                    Segment::Pulse => (
                        Some(QubitId::new((off / self.pulse_entries) as u32)),
                        off % self.pulse_entries,
                    ),
                    Segment::Slt => {
                        let per_qubit = self.slt_ways * self.slt_entries_per_way;
                        (
                            Some(QubitId::new((off / per_qubit) as u32)),
                            off % per_qubit,
                        )
                    }
                    Segment::Measure | Segment::Regfile => (None, off),
                };
                return Ok(DecodedAddress {
                    segment: seg,
                    qubit,
                    entry,
                });
            }
        }
        unreachable!("program segment starts at 0")
    }
}

fn next_multiple(value: u64, align: u64) -> u64 {
    value.div_ceil(align) * align
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout64() -> QccLayout {
        QccLayout::for_qubits(64).unwrap()
    }

    #[test]
    fn table2_sizes_for_64_qubits() {
        let l = layout64();
        // 520 KB program, 5 MB pulse, 40 KB measure, 112 KB slt, 4 KB regfile.
        assert_eq!(l.segment_bytes(Segment::Program), 520 * 1024);
        assert_eq!(l.segment_bytes(Segment::Pulse), 5 * 1024 * 1024);
        assert_eq!(l.segment_bytes(Segment::Measure), 40 * 1024);
        assert_eq!(l.segment_bytes(Segment::Slt), 112 * 1024);
        assert_eq!(l.segment_bytes(Segment::Regfile), 4 * 1024);
        // Table 2 total: 5.66 MB.
        assert!((l.total_bytes() as f64 / (1024.0 * 1024.0) - 5.66).abs() < 0.01);
    }

    #[test]
    fn fig4_memory_map_for_64_qubits() {
        let l = layout64();
        assert_eq!(l.program_entry(QubitId::new(0), 0).unwrap().raw(), 0x0);
        assert_eq!(l.program_entry(QubitId::new(0), 1023).unwrap().raw(), 0x3ff);
        assert_eq!(l.program_entry(QubitId::new(1), 0).unwrap().raw(), 0x400);
        assert_eq!(l.segment_base(Segment::Regfile), 0x70000);
        assert_eq!(l.segment_base(Segment::Measure), 0x71000);
        assert_eq!(
            l.segment_base(Segment::Measure) + l.measure_entries(),
            0x72400
        );
        assert_eq!(l.pulse_entry(QubitId::new(0), 0).unwrap().raw(), 0x80000);
        assert_eq!(l.pulse_entry(QubitId::new(1), 0).unwrap().raw(), 0x80400);
    }

    #[test]
    fn scalability_layout_at_256_qubits() {
        // Section 7.5: controlling 256 qubits requires ~22.63 MB of cache.
        let l = QccLayout::for_qubits(256).unwrap();
        let mb = l.total_bytes() as f64 / (1024.0 * 1024.0);
        assert!((mb - 22.63).abs() < 0.05, "got {mb} MB");
    }

    #[test]
    fn layout_supports_320_qubits() {
        let l = QccLayout::for_qubits(320).unwrap();
        assert_eq!(l.n_qubits(), 320);
        // Per-qubit chunks must not collide with shared segments.
        let prog_end = l.segment_base(Segment::Program) + l.segment_entries(Segment::Program);
        assert!(prog_end <= l.segment_base(Segment::Regfile));
    }

    #[test]
    fn decode_round_trips_every_segment() {
        let l = layout64();
        let cases = [
            (
                l.program_entry(QubitId::new(5), 17).unwrap(),
                Segment::Program,
                Some(5),
                17,
            ),
            (
                l.pulse_entry(QubitId::new(63), 1023).unwrap(),
                Segment::Pulse,
                Some(63),
                1023,
            ),
            (l.regfile_entry(12).unwrap(), Segment::Regfile, None, 12),
            (l.measure_entry(5119).unwrap(), Segment::Measure, None, 5119),
        ];
        for (addr, seg, qubit, entry) in cases {
            let d = l.decode(addr).unwrap();
            assert_eq!(d.segment, seg);
            assert_eq!(d.qubit.map(|q| q.index()), qubit);
            assert_eq!(d.entry, entry);
        }
    }

    #[test]
    fn decode_rejects_holes() {
        let l = layout64();
        // Just past the end of .program (64 × 1024 = 0x10000) lies a hole
        // before .regfile at 0x70000.
        let hole = QAddress::new(0x20000).unwrap();
        assert!(matches!(
            l.decode(hole),
            Err(IsaError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn out_of_range_operands_rejected() {
        let l = layout64();
        assert!(l.program_entry(QubitId::new(64), 0).is_err());
        assert!(l.program_entry(QubitId::new(0), 1024).is_err());
        assert!(l.regfile_entry(1024).is_err());
        assert!(l.measure_entry(5120).is_err());
    }

    #[test]
    fn qaddress_bounds() {
        assert!(QAddress::new(QADDRESS_MASK).is_ok());
        assert!(QAddress::new(QADDRESS_MASK + 1).is_err());
        let a = QAddress::new(QADDRESS_MASK).unwrap();
        assert!(a.offset(1).is_err());
    }

    #[test]
    fn zero_qubits_rejected() {
        assert!(QccLayout::for_qubits(0).is_err());
    }

    #[test]
    fn segments_public_private_split() {
        assert!(Segment::Program.is_public());
        assert!(Segment::Measure.is_public());
        assert!(Segment::Regfile.is_public());
        assert!(!Segment::Pulse.is_public());
        assert!(!Segment::Slt.is_public());
    }
}
