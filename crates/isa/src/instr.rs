//! The five Qtenon instructions and their operand packing (Table 3,
//! Fig. 8b), plus a small textual assembler for debugging and tests.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::qaddress::{QAddress, QADDRESS_BITS, QADDRESS_MASK};
use crate::rocc::{RoccFunct, RoccWord};
use crate::IsaError;

/// Width of the `length` field packed above the quantum address in `rs2`.
pub const LENGTH_BITS: u32 = 64 - QADDRESS_BITS; // 25

/// Maximum transfer length (in entries) expressible by `q_set`/`q_acquire`.
pub const MAX_TRANSFER_LEN: u64 = (1 << LENGTH_BITS) - 1;

/// A decoded Qtenon instruction with semantic operands.
///
/// # Examples
///
/// ```
/// use qtenon_isa::{Instruction, QAddress};
///
/// let set = Instruction::QSet {
///     classical_addr: 0x8000_0000,
///     qaddr: QAddress::new(0x400)?,
///     length: 285,
/// };
/// let enc = set.encode();
/// assert_eq!(Instruction::decode(&enc)?, set);
/// # Ok::<(), qtenon_isa::IsaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instruction {
    /// Transfer one value from a host core register into the public
    /// quantum controller cache (data path ❶, RoCC, one cycle).
    QUpdate {
        /// Destination quantum address.
        qaddr: QAddress,
        /// The 32-bit value to write (e.g. an encoded angle).
        value: u32,
    },
    /// Bulk-load host memory into the quantum controller cache (data
    /// path ❷, TileLink).
    QSet {
        /// Source address in host memory.
        classical_addr: u64,
        /// Destination quantum address (start).
        qaddr: QAddress,
        /// Number of entries to transfer.
        length: u64,
    },
    /// Retrieve quantum controller cache data (typically `.measure`) into
    /// host memory (data path ❷).
    QAcquire {
        /// Destination address in host memory.
        classical_addr: u64,
        /// Source quantum address (start).
        qaddr: QAddress,
        /// Number of entries to transfer.
        length: u64,
    },
    /// Trigger pulse generation for a range of program entries.
    QGen {
        /// First program entry to process.
        qaddr: QAddress,
        /// Number of program entries to process.
        length: u64,
    },
    /// Run the loaded quantum program for `shots` repetitions, depositing
    /// measurement results in the `.measure` segment.
    QRun {
        /// Number of shots.
        shots: u64,
    },
}

/// An encoded instruction: the 32-bit RoCC word plus the register *values*
/// it consumes. This is what the host core hands the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EncodedInstruction {
    /// The instruction word.
    pub word: RoccWord,
    /// Value of the register named by `rs1` (if `xs1`).
    pub rs1_value: u64,
    /// Value of the register named by `rs2` (if `xs2`).
    pub rs2_value: u64,
}

impl Instruction {
    /// The RoCC funct for this instruction.
    pub fn funct(&self) -> RoccFunct {
        match self {
            Instruction::QUpdate { .. } => RoccFunct::QUpdate,
            Instruction::QSet { .. } => RoccFunct::QSet,
            Instruction::QAcquire { .. } => RoccFunct::QAcquire,
            Instruction::QGen { .. } => RoccFunct::QGen,
            Instruction::QRun { .. } => RoccFunct::QRun,
        }
    }

    /// Whether this is a data-communication instruction (Table 3's
    /// `Data Comm.` group) as opposed to a computation instruction.
    pub fn is_communication(&self) -> bool {
        matches!(
            self,
            Instruction::QUpdate { .. } | Instruction::QSet { .. } | Instruction::QAcquire { .. }
        )
    }

    /// Encodes to a RoCC word plus register values.
    ///
    /// Lengths are clamped at encode time by construction: building an
    /// over-long `QSet` is rejected by [`Instruction::decode`]'s inverse
    /// checks and by [`pack_len_addr`].
    pub fn encode(&self) -> EncodedInstruction {
        // Register numbers are conventional: rs1=x10, rs2=x11, rd=x12.
        let (rs1, rs2, xd) = (10u8, 11u8, false);
        match *self {
            Instruction::QUpdate { qaddr, value } => EncodedInstruction {
                word: RoccWord::new(RoccFunct::QUpdate, 0, rs1, rs2, xd, true, true),
                rs1_value: qaddr.raw(),
                rs2_value: value as u64,
            },
            Instruction::QSet {
                classical_addr,
                qaddr,
                length,
            } => EncodedInstruction {
                word: RoccWord::new(RoccFunct::QSet, 0, rs1, rs2, xd, true, true),
                rs1_value: classical_addr,
                rs2_value: pack_len_addr(length, qaddr),
            },
            Instruction::QAcquire {
                classical_addr,
                qaddr,
                length,
            } => EncodedInstruction {
                word: RoccWord::new(RoccFunct::QAcquire, 0, rs1, rs2, xd, true, true),
                rs1_value: classical_addr,
                rs2_value: pack_len_addr(length, qaddr),
            },
            Instruction::QGen { qaddr, length } => EncodedInstruction {
                word: RoccWord::new(RoccFunct::QGen, 0, rs1, rs2, xd, true, true),
                rs1_value: qaddr.raw(),
                rs2_value: length,
            },
            Instruction::QRun { shots } => EncodedInstruction {
                word: RoccWord::new(RoccFunct::QRun, 0, rs1, 0, xd, true, false),
                rs1_value: shots,
                rs2_value: 0,
            },
        }
    }

    /// Decodes an encoded instruction back to semantic form.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::AddressOutOfRange`] if a packed quantum address
    /// is invalid.
    pub fn decode(enc: &EncodedInstruction) -> Result<Self, IsaError> {
        Ok(match enc.word.funct {
            RoccFunct::QUpdate => Instruction::QUpdate {
                qaddr: QAddress::new(enc.rs1_value & QADDRESS_MASK)?,
                value: enc.rs2_value as u32,
            },
            RoccFunct::QSet => {
                let (length, qaddr) = unpack_len_addr(enc.rs2_value)?;
                Instruction::QSet {
                    classical_addr: enc.rs1_value,
                    qaddr,
                    length,
                }
            }
            RoccFunct::QAcquire => {
                let (length, qaddr) = unpack_len_addr(enc.rs2_value)?;
                Instruction::QAcquire {
                    classical_addr: enc.rs1_value,
                    qaddr,
                    length,
                }
            }
            RoccFunct::QGen => Instruction::QGen {
                qaddr: QAddress::new(enc.rs1_value & QADDRESS_MASK)?,
                length: enc.rs2_value,
            },
            RoccFunct::QRun => Instruction::QRun {
                shots: enc.rs1_value,
            },
        })
    }

    /// Parses assembly text like `q_set 0x80000000, @0x400, 285`.
    ///
    /// Accepted forms (whitespace-insensitive, `@` marks quantum
    /// addresses):
    ///
    /// - `q_update @<qaddr>, <value>`
    /// - `q_set <caddr>, @<qaddr>, <len>`
    /// - `q_acquire <caddr>, @<qaddr>, <len>`
    /// - `q_gen @<qaddr>, <len>`
    /// - `q_run <shots>`
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ParseError`] on malformed text.
    pub fn parse_asm(text: &str) -> Result<Self, IsaError> {
        let text = text.trim();
        let (mnemonic, rest) = text.split_once(char::is_whitespace).unwrap_or((text, ""));
        let args: Vec<&str> = rest
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        let err = |message: String| IsaError::ParseError { message };
        let parse_num = |s: &str| -> Result<u64, IsaError> {
            let s = s.trim();
            let (digits, radix) = match s.strip_prefix("0x") {
                Some(hex) => (hex, 16),
                None => (s, 10),
            };
            u64::from_str_radix(digits, radix).map_err(|e| err(format!("bad number {s:?}: {e}")))
        };
        let parse_qaddr = |s: &str| -> Result<QAddress, IsaError> {
            let s = s
                .strip_prefix('@')
                .ok_or_else(|| err(format!("quantum address must start with '@': {s:?}")))?;
            QAddress::new(parse_num(s)?)
        };
        let want = |n: usize| -> Result<(), IsaError> {
            if args.len() != n {
                return Err(err(format!(
                    "{mnemonic} expects {n} operands, got {}",
                    args.len()
                )));
            }
            Ok(())
        };
        match mnemonic {
            "q_update" => {
                want(2)?;
                Ok(Instruction::QUpdate {
                    qaddr: parse_qaddr(args[0])?,
                    value: parse_num(args[1])? as u32,
                })
            }
            "q_set" => {
                want(3)?;
                Ok(Instruction::QSet {
                    classical_addr: parse_num(args[0])?,
                    qaddr: parse_qaddr(args[1])?,
                    length: parse_num(args[2])?,
                })
            }
            "q_acquire" => {
                want(3)?;
                Ok(Instruction::QAcquire {
                    classical_addr: parse_num(args[0])?,
                    qaddr: parse_qaddr(args[1])?,
                    length: parse_num(args[2])?,
                })
            }
            "q_gen" => {
                want(2)?;
                Ok(Instruction::QGen {
                    qaddr: parse_qaddr(args[0])?,
                    length: parse_num(args[1])?,
                })
            }
            "q_run" => {
                want(1)?;
                Ok(Instruction::QRun {
                    shots: parse_num(args[0])?,
                })
            }
            other => Err(err(format!("unknown mnemonic {other:?}"))),
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::QUpdate { qaddr, value } => {
                write!(f, "q_update @{:#x}, {:#x}", qaddr.raw(), value)
            }
            Instruction::QSet {
                classical_addr,
                qaddr,
                length,
            } => write!(
                f,
                "q_set {:#x}, @{:#x}, {}",
                classical_addr,
                qaddr.raw(),
                length
            ),
            Instruction::QAcquire {
                classical_addr,
                qaddr,
                length,
            } => write!(
                f,
                "q_acquire {:#x}, @{:#x}, {}",
                classical_addr,
                qaddr.raw(),
                length
            ),
            Instruction::QGen { qaddr, length } => {
                write!(f, "q_gen @{:#x}, {}", qaddr.raw(), length)
            }
            Instruction::QRun { shots } => write!(f, "q_run {shots}"),
        }
    }
}

/// Packs a transfer length into the upper 25 bits and a quantum address
/// into the lower 39 bits of an `rs2` value (Fig. 8b).
///
/// Lengths beyond [`MAX_TRANSFER_LEN`] saturate; the runtime splits such
/// transfers into multiple instructions before encoding.
pub fn pack_len_addr(length: u64, qaddr: QAddress) -> u64 {
    let length = length.min(MAX_TRANSFER_LEN);
    (length << QADDRESS_BITS) | qaddr.raw()
}

/// The inverse of [`pack_len_addr`].
///
/// # Errors
///
/// Never fails for values produced by [`pack_len_addr`]; the `Result`
/// mirrors [`QAddress::new`] for raw register values.
pub fn unpack_len_addr(rs2: u64) -> Result<(u64, QAddress), IsaError> {
    let length = rs2 >> QADDRESS_BITS;
    let qaddr = QAddress::new(rs2 & QADDRESS_MASK)?;
    Ok((length, qaddr))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qa(raw: u64) -> QAddress {
        QAddress::new(raw).unwrap()
    }

    fn all_instructions() -> Vec<Instruction> {
        vec![
            Instruction::QUpdate {
                qaddr: qa(0x70000),
                value: 0xdead_beef,
            },
            Instruction::QSet {
                classical_addr: 0x8000_0000,
                qaddr: qa(0x400),
                length: 285,
            },
            Instruction::QAcquire {
                classical_addr: 0x9000_0000,
                qaddr: qa(0x71000),
                length: 5120,
            },
            Instruction::QGen {
                qaddr: qa(0),
                length: 1024,
            },
            Instruction::QRun { shots: 500 },
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        for instr in all_instructions() {
            let enc = instr.encode();
            assert_eq!(Instruction::decode(&enc).unwrap(), instr);
        }
    }

    #[test]
    fn rocc_word_bits_round_trip() {
        // Full path: semantic -> rocc word bits -> semantic.
        for instr in all_instructions() {
            let enc = instr.encode();
            let bits = enc.word.encode();
            let word = RoccWord::decode(bits).unwrap();
            let redecoded = Instruction::decode(&EncodedInstruction {
                word,
                rs1_value: enc.rs1_value,
                rs2_value: enc.rs2_value,
            })
            .unwrap();
            assert_eq!(redecoded, instr);
        }
    }

    #[test]
    fn len_addr_packing() {
        let (len, addr) = unpack_len_addr(pack_len_addr(285, qa(0x400))).unwrap();
        assert_eq!(len, 285);
        assert_eq!(addr, qa(0x400));
        // Length saturates at 25 bits.
        let (len, _) = unpack_len_addr(pack_len_addr(u64::MAX, qa(0))).unwrap();
        assert_eq!(len, MAX_TRANSFER_LEN);
    }

    #[test]
    fn asm_round_trip() {
        for instr in all_instructions() {
            let text = instr.to_string();
            assert_eq!(Instruction::parse_asm(&text).unwrap(), instr, "text={text}");
        }
    }

    #[test]
    fn asm_rejects_malformed() {
        for bad in [
            "q_teleport 1",
            "q_run",
            "q_update 0x100, 3", // missing '@'
            "q_set 0x1, @0x2",   // missing operand
            "q_run banana",
            "",
        ] {
            assert!(
                Instruction::parse_asm(bad).is_err(),
                "should reject {bad:?}"
            );
        }
    }

    #[test]
    fn communication_vs_computation_split() {
        let instrs = all_instructions();
        assert!(instrs[0].is_communication());
        assert!(instrs[1].is_communication());
        assert!(instrs[2].is_communication());
        assert!(!instrs[3].is_communication());
        assert!(!instrs[4].is_communication());
    }

    #[test]
    fn funct_matches_variant() {
        assert_eq!(Instruction::QRun { shots: 1 }.funct(), RoccFunct::QRun);
        assert_eq!(
            Instruction::QGen {
                qaddr: qa(0),
                length: 1
            }
            .funct(),
            RoccFunct::QGen
        );
    }
}
