//! Drive the Qtenon ISA by hand: assemble the five instructions, execute
//! them against the integrated system, and read measurement results back
//! through the soft memory barrier.
//!
//! This is the path a firmware author would take — no VQA runner, just
//! `q_set` / `q_update` / `q_gen` / `q_run` / `q_acquire`.
//!
//! ```text
//! cargo run --release --example isa_playground
//! ```

use qtenon::compiler::QtenonCompiler;
use qtenon::core::config::{CoreModel, QtenonConfig};
use qtenon::core::system::QtenonSystem;
use qtenon::core::vqa::unpack_measurements;
use qtenon::isa::Instruction;
use qtenon::quantum::{transpile, Circuit};
use qtenon::sim_engine::SimTime;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4;
    let config = QtenonConfig::table4(n, CoreModel::Rocket)?;
    let mut system = QtenonSystem::new(config)?;

    // A Bell-pair-plus-spectators circuit, transpiled to the native set.
    let mut circuit = Circuit::new(n);
    circuit.h(0).cx(0, 1).measure_all();
    let native = transpile::to_native(&circuit)?;
    println!("native circuit:\n{native}");

    // Compile to per-qubit program entries.
    let program = QtenonCompiler::new(config.layout).compile(&native)?;
    println!(
        "compiled: {} entries across {} chunks, {} register slots",
        program.total_entries(),
        program.chunks().iter().filter(|c| !c.is_empty()).count(),
        program.slots().len()
    );

    // --- q_set: load the program, printing each instruction's assembly.
    let mut now = SimTime::ZERO;
    for instr in program.load_instructions(0x8000_0000) {
        println!("  {instr}");
        // Round-trip through the textual assembler, then the RoCC
        // encoding, for demonstration.
        let reparsed = Instruction::parse_asm(&instr.to_string())?;
        assert_eq!(reparsed, instr);
        let encoded = instr.encode();
        assert_eq!(Instruction::decode(&encoded)?, instr);
        if let Instruction::QSet {
            classical_addr,
            qaddr,
            ..
        } = instr
        {
            let chunk_qubit = config.layout.decode(qaddr)?.qubit.expect("program chunk");
            now = system.q_set_program(
                now,
                classical_addr,
                qaddr,
                &program.chunks()[chunk_qubit.index() as usize],
            )?;
        }
    }
    println!("program loaded at {now}");

    // --- q_gen: compute the pulses.
    let items = program.work_items(&[])?;
    let (gen, t) = system.q_gen(now, &items)?;
    println!(
        "q_gen: {} pulses generated, {} skipped, took {}",
        gen.generated,
        gen.entries - gen.generated,
        gen.total_time
    );
    now = t;

    // --- q_run: 16 shots.
    let shots = 16;
    let outcome = system.q_run(now, &native, shots)?;
    println!(
        "q_run: {} shots of {} each, done at {}",
        shots, outcome.shot_duration, outcome.complete
    );

    // --- q_acquire: pull the packed results to host memory.
    let measure_base = config.layout.measure_entry(0)?;
    let host_buf = 0x9000_0000u64;
    let (words, done) = system.q_acquire(outcome.complete, measure_base, shots, host_buf)?;
    println!("q_acquire complete at {done}");

    // The barrier says when the host may touch the buffer.
    assert!(system.barrier_mut().is_synced(host_buf));

    let results = unpack_measurements(&words, n, shots);
    println!("\nshots (q3 q2 q1 q0):");
    for bits in &results {
        // Bell pair: qubits 0 and 1 always agree.
        assert_eq!(bits.get(0), bits.get(1), "Bell correlation violated");
        println!("  {bits}");
    }
    println!("\nBell correlation held across all {shots} shots.");
    Ok(())
}
