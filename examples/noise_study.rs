//! NISQ noise study: how gate and readout errors degrade a VQA's cost
//! landscape, and where the readout error physically comes from.
//!
//! Runs the same VQE instance on an ideal chip and on chips with
//! increasing noise, then relates the observed readout error to the
//! controller's IQ-discrimination unit.
//!
//! ```text
//! cargo run --release --example noise_study
//! ```

use qtenon::controller::readout::ReadoutProcessor;
use qtenon::quantum::noise::NoiseModel;
use qtenon::quantum::sim::Simulator;
use qtenon::workloads::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 12;
    let workload = Workload::vqe(n, 5)?;
    let bound = workload.circuit.bind(&workload.initial_params)?;
    let shots = 4000;

    println!("VQE-{n} energy under increasing noise ({shots} shots):");
    let noiseless = NoiseModel::NONE;
    let mild = NoiseModel {
        depolarizing_1q: 0.0005,
        depolarizing_2q: 0.005,
        readout_p01: 0.01,
        readout_p10: 0.005,
    };
    let typical = NoiseModel::typical_superconducting();
    let harsh = NoiseModel {
        depolarizing_1q: 0.005,
        depolarizing_2q: 0.05,
        readout_p01: 0.08,
        readout_p10: 0.05,
    };
    for (name, noise) in [
        ("ideal   ", noiseless),
        ("mild    ", mild),
        ("typical ", typical),
        ("harsh   ", harsh),
    ] {
        let mut sim = Simulator::mean_field(n, 7).with_noise(noise);
        let samples = sim.run(&bound, shots)?;
        let cost = workload.hamiltonian.expectation_from_shots(&samples);
        println!("  {name} energy {cost:>8.4}");
    }

    // Where readout error comes from: the controller's IQ discriminator.
    println!("\nreadout discrimination (controller's data processor):");
    for sigma in [0.2, 0.35, 0.5, 0.8] {
        let unit = ReadoutProcessor {
            sigma,
            ..ReadoutProcessor::default()
        };
        println!(
            "  sigma {sigma:.2}: SNR {:>5.2} → assignment error {:>8.5} (latency {})",
            unit.separation_snr(),
            unit.expected_error_rate(),
            unit.latency()
        );
    }
    println!("\nNoisier integration (higher sigma) is exactly what the");
    println!("aggregate readout_p01/p10 channels in NoiseModel describe.");
    Ok(())
}
