//! QAOA MAX-CUT head-to-head: the Qtenon tightly coupled system vs the
//! decoupled host+FPGA baseline on the same problem instance.
//!
//! Reproduces the paper's headline comparison in miniature: both systems
//! run the identical workload and optimizer; the report shows who wins,
//! by how much, and why (per-component breakdown).
//!
//! ```text
//! cargo run --release --example qaoa_maxcut
//! ```

use qtenon::baseline::{BaselineConfig, BaselineRunner};
use qtenon::core::config::{CoreModel, QtenonConfig};
use qtenon::core::report::RunReport;
use qtenon::core::vqa::VqaRunner;
use qtenon::workloads::{Graph, SpsaOptimizer, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 24;
    let graph = Graph::circulant_3_regular(n);
    println!(
        "MAX-CUT on a 3-regular graph: {} vertices, {} edges",
        graph.n_vertices(),
        graph.edges().len()
    );

    let workload = Workload::qaoa_on_graph(&graph, 5, 99)?;
    let iterations = 5;
    let shots = 300;

    // --- Qtenon.
    let config = QtenonConfig::table4(n, CoreModel::BoomLarge)?;
    let mut qtenon = VqaRunner::new(config, workload.clone())?;
    let qtenon_report = qtenon.run(&mut SpsaOptimizer::new(99), iterations, shots)?;

    // --- Decoupled baseline.
    let mut baseline = BaselineRunner::new(BaselineConfig::default(), workload);
    let baseline_report = baseline.run(&mut SpsaOptimizer::new(99), iterations, shots)?;

    print_system("decoupled baseline", &baseline_report);
    print_system("Qtenon (Boom-L)", &qtenon_report);

    let e2e = baseline_report.total.as_ns() / qtenon_report.total.as_ns();
    let classical =
        baseline_report.classical_time().as_ns() / qtenon_report.classical_time().as_ns();
    println!("\nend-to-end speedup: {e2e:.1}x");
    println!("classical-time speedup: {classical:.1}x");

    // Both optimisations walked the same seeded landscape: expected cut
    // value is -cost.
    println!(
        "\nexpected cut value found: {:.2} (baseline) / {:.2} (Qtenon)",
        -baseline_report.final_cost, -qtenon_report.final_cost
    );
    Ok(())
}

fn print_system(name: &str, r: &RunReport) {
    let [q, c, p, h] = r.exposed_shares();
    println!("\n{name}");
    println!("  total {}", r.total);
    println!(
        "  quantum {:.1}% | comm {:.1}% | pulse {:.1}% | host {:.1}%",
        q * 100.0,
        c * 100.0,
        p * 100.0,
        h * 100.0
    );
    println!(
        "  comm by instruction: q_set {} | q_update {} | q_acquire/PUT {}",
        r.comm.q_set, r.comm.q_update, r.comm.q_acquire
    );
}
