//! VQE ground-state search with optimizer and synchronisation ablations.
//!
//! Runs the same molecular-stand-in Hamiltonian under Gradient Descent
//! (parameter-shift) and SPSA, and under FENCE vs fine-grained
//! synchronisation, showing how Qtenon's software stack changes both the
//! wall time and nothing about the physics.
//!
//! ```text
//! cargo run --release --example vqe_ground_state
//! ```

use qtenon::core::config::{CoreModel, QtenonConfig, SyncMode};
use qtenon::core::vqa::VqaRunner;
use qtenon::workloads::{GradientDescentOptimizer, Optimizer, SpsaOptimizer, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 10;
    let workload = Workload::vqe(n, 21)?;
    println!(
        "VQE: {} qubits, {} parameters, {} Hamiltonian terms",
        n,
        workload.num_params(),
        workload.hamiltonian.terms().len()
    );

    let shots = 400;
    let iterations = 6;

    // --- Optimizer comparison (fine-grained sync, batched transmission).
    for (name, mut opt) in [
        (
            "GD (parameter shift)",
            Box::new(GradientDescentOptimizer::new(0.08)) as Box<dyn Optimizer>,
        ),
        (
            "SPSA",
            Box::new(SpsaOptimizer::new(21)) as Box<dyn Optimizer>,
        ),
    ] {
        let config = QtenonConfig::table4(n, CoreModel::Rocket)?;
        let mut runner = VqaRunner::new(config, workload.clone())?;
        let report = runner.run(opt.as_mut(), iterations, shots)?;
        println!("\n{name}:");
        println!(
            "  total {} | energy history {:?}",
            report.total,
            report
                .cost_history
                .iter()
                .map(|c| (c * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
        println!(
            "  pulse reuse {:.1}% | comm {} over {} instructions",
            report.pulse_reduction * 100.0,
            report.comm.total(),
            report.dynamic_instructions
        );
    }

    // --- Synchronisation ablation (Fig. 9 / Fig. 16a in miniature).
    println!("\nsynchronisation ablation (SPSA):");
    for (name, sync) in [
        ("FENCE (RISC-V default)", SyncMode::Fence),
        ("fine-grained barrier  ", SyncMode::FineGrained),
    ] {
        let config = QtenonConfig::table4(n, CoreModel::Rocket)?.with_sync(sync);
        let mut runner = VqaRunner::new(config, workload.clone())?;
        let report = runner.run(&mut SpsaOptimizer::new(21), iterations, shots)?;
        println!(
            "  {name}: total {} (classical tail {})",
            report.total,
            report.classical_time()
        );
    }
    Ok(())
}
