//! Scalability study: Qtenon from 64 to 320 qubits (Fig. 17 in
//! miniature).
//!
//! Sweeps the qubit count, printing communication time, classical time,
//! and the quantum share of the wall clock — demonstrating that the
//! design keeps quantum execution dominant as the system grows.
//!
//! ```text
//! cargo run --release --example scalability
//! ```

use qtenon::core::config::{CoreModel, QtenonConfig};
use qtenon::core::vqa::VqaRunner;
use qtenon::isa::{QccLayout, Segment};
use qtenon::workloads::{SpsaOptimizer, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("cache budget by qubit count (Section 7.5):");
    for n in [64u32, 128, 192, 256, 320] {
        let layout = QccLayout::for_qubits(n)?;
        println!(
            "  {n:>3} qubits: QCC {:6.2} MB ({} pulse entries), QSpace {:5} MB",
            layout.total_bytes() as f64 / (1024.0 * 1024.0),
            layout.segment_entries(Segment::Pulse),
            n as u64 * 4
        );
    }

    println!("\nQAOA (SPSA, 3 iterations × 200 shots) across the sweep:");
    println!(
        "{:>7}  {:>12}  {:>12}  {:>12}  {:>9}",
        "#qubits", "total", "comm", "classical", "quantum %"
    );
    for n in [64u32, 128, 192, 256, 320] {
        let config = QtenonConfig::table4(n, CoreModel::BoomLarge)?;
        let workload = Workload::qaoa(n, 5, 17)?;
        let mut runner = VqaRunner::new(config, workload)?;
        let report = runner.run(&mut SpsaOptimizer::new(17), 3, 200)?;
        println!(
            "{:>7}  {:>12}  {:>12}  {:>12}  {:>8.1}%",
            n,
            report.total.to_string(),
            report.comm.total().to_string(),
            report.classical_time().to_string(),
            report.exposed_shares()[0] * 100.0
        );
    }
    Ok(())
}
