//! Quickstart: run one hybrid quantum-classical workload on the Qtenon
//! system and print where the time went.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qtenon::core::config::{CoreModel, QtenonConfig};
use qtenon::core::vqa::VqaRunner;
use qtenon::workloads::{SpsaOptimizer, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Table-4 hardware at 16 qubits with a Rocket host core.
    let config = QtenonConfig::table4(16, CoreModel::Rocket)?;

    // A 16-qubit QAOA MAX-CUT instance with three layers.
    let workload = Workload::qaoa(16, 3, 7)?;
    println!(
        "workload: {} on {} qubits, {} parameters, {} native gates",
        workload.kind,
        workload.n_qubits(),
        workload.num_params(),
        workload.circuit.operations().len()
    );

    // Optimise for five iterations of SPSA at 200 shots per evaluation.
    let mut runner = VqaRunner::new(config, workload)?;
    let mut optimizer = SpsaOptimizer::new(7);
    let report = runner.run(&mut optimizer, 5, 200)?;

    println!("\nend-to-end time: {}", report.total);
    let [q, c, p, h] = report.exposed_shares();
    println!("  quantum execution   {:>6.2}%", q * 100.0);
    println!("  quantum-host comm.  {:>6.2}%", c * 100.0);
    println!("  pulse generation    {:>6.2}%", p * 100.0);
    println!("  host computation    {:>6.2}%", h * 100.0);

    println!(
        "\ninstructions: {} dynamic / {} static",
        report.dynamic_instructions, report.static_instructions
    );
    println!(
        "pulse cache: {} lookups, {:.1}% skipped ({} pulses actually computed)",
        report.slt.lookups,
        report.pulse_reduction * 100.0,
        report.pulses_generated
    );

    println!("\ncost per iteration (lower is better):");
    for (i, cost) in report.cost_history.iter().enumerate() {
        println!("  iter {:>2}: {cost:>8.4}", i + 1);
    }
    Ok(())
}
