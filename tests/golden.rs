//! Golden-file snapshot tests for the experiments telemetry export — the
//! JSON artefact `qtenon --metrics` and `experiments --metrics` write.
//!
//! Goldens live in `tests/golden/`. A missing golden is bootstrapped from
//! the current output on first run; after an intentional schema or model
//! change, regenerate with `UPDATE_GOLDEN=1 cargo test -p qtenon --test
//! golden` (see README). The determinism assertions (serial vs sharded)
//! run unconditionally — they never depend on the files.

use std::path::PathBuf;

use qtenon_bench::experiments::{telemetry_snapshot, telemetry_snapshot_exact, ExperimentScale};
use qtenon_sim_engine::{MetricValue, MetricsSnapshot};

/// A fixed tiny scale so golden bytes are stable and cheap to produce.
fn golden_scale() -> ExperimentScale {
    ExperimentScale {
        iterations: 1,
        shots: 64,
        qubit_sweep: vec![8],
        scaling_sweep: vec![8],
        seed: 7,
        threads: 1,
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` against the stored golden. Bootstraps a missing
/// golden and rewrites it under `UPDATE_GOLDEN=1`.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    if update || !path.exists() {
        std::fs::create_dir_all(path.parent().expect("golden dir has parent"))
            .expect("create tests/golden");
        std::fs::write(&path, actual).expect("write golden");
        eprintln!("golden {name}: wrote {} bytes", actual.len());
        return;
    }
    let expected = std::fs::read_to_string(&path).expect("read golden");
    assert_eq!(
        expected, actual,
        "golden {name} is stale; regenerate with UPDATE_GOLDEN=1 after verifying the change"
    );
}

#[test]
fn metrics_schema_matches_golden() {
    let snapshot = telemetry_snapshot(&golden_scale());
    let mut schema = String::new();
    for (path, value) in &snapshot.metrics {
        let kind = match value {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        };
        schema.push_str(path);
        schema.push(' ');
        schema.push_str(kind);
        schema.push('\n');
    }
    // The parallel engine's shard metrics are part of the schema.
    assert!(
        schema.contains("core.parallel.shots_sampled counter"),
        "shard counter missing from schema:\n{schema}"
    );
    assert!(
        schema.contains("core.parallel.ones_per_shot histogram"),
        "shard histogram missing from schema:\n{schema}"
    );
    check_golden("metrics_schema.txt", &schema);
}

/// The metric tree minus the `quantum.fuse.*` accounting counters — the
/// only entries allowed to differ between fused and unfused runs.
fn strip_fuse_counters(s: &MetricsSnapshot) -> Vec<(String, MetricValue)> {
    s.metrics
        .iter()
        .filter(|(path, _)| !path.starts_with("quantum.fuse."))
        .map(|(path, value)| (path.clone(), value.clone()))
        .collect()
}

fn fuse_counter(s: &MetricsSnapshot, path: &str) -> u64 {
    match s.metrics.iter().find(|(p, _)| p.as_str() == path) {
        Some((_, MetricValue::Counter(n))) => *n,
        other => panic!("expected counter at {path}, found {other:?}"),
    }
}

#[test]
fn fusion_is_artefact_invariant_on_the_exact_backend() {
    // 8 qubits puts the exact statevector backend — and the kernel/fusion
    // layer — on the path; >1 shard exercises sharded sampling with the
    // fusion toggle in both positions.
    let scale = golden_scale().with_threads(4);
    let (fused, fused_report) = telemetry_snapshot_exact(&scale, true);
    let (unfused, unfused_report) = telemetry_snapshot_exact(&scale, false);
    // The run artefacts (timings, costs, shots, sync traces) never depend
    // on fusion.
    assert_eq!(fused_report, unfused_report, "fusion changed the report");
    assert_eq!(
        strip_fuse_counters(&fused),
        strip_fuse_counters(&unfused),
        "fusion leaked beyond the quantum.fuse.* accounting counters"
    );
    // Both runs really took the intended paths.
    assert!(fuse_counter(&fused, "quantum.fuse.gates_fused") > 0);
    assert_eq!(fuse_counter(&unfused, "quantum.fuse.gates_fused"), 0);
    assert_eq!(fuse_counter(&unfused, "quantum.fuse.fused_runs"), 0);
    assert_eq!(
        fuse_counter(&fused, "quantum.fuse.gates_in"),
        fuse_counter(&unfused, "quantum.fuse.gates_in"),
        "gate accounting must not depend on the fusion toggle"
    );
    // Sharding is invariant too, in either fusion mode.
    let (fused_serial, _) = telemetry_snapshot_exact(&golden_scale(), true);
    let (unfused_serial, _) = telemetry_snapshot_exact(&golden_scale(), false);
    assert_eq!(fused_serial.to_json(), fused.to_json());
    assert_eq!(unfused_serial.to_json(), unfused.to_json());
}

#[test]
fn exact_backend_metrics_schema_matches_golden() {
    let (snapshot, _) = telemetry_snapshot_exact(&golden_scale(), true);
    let mut schema = String::new();
    for (path, value) in &snapshot.metrics {
        let kind = match value {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        };
        schema.push_str(path);
        schema.push(' ');
        schema.push_str(kind);
        schema.push('\n');
    }
    // The kernel accounting counters are part of the exact-backend schema.
    for counter in [
        "quantum.fuse.gates_in",
        "quantum.fuse.gates_fused",
        "quantum.fuse.runs",
        "quantum.fuse.fused_runs",
        "quantum.fuse.identities_elided",
        "quantum.fuse.kernels.diag",
        "quantum.fuse.kernels.general",
        "quantum.fuse.kernels.cz",
    ] {
        assert!(
            schema.contains(&format!("{counter} counter")),
            "{counter} missing from exact-backend schema:\n{schema}"
        );
    }
    check_golden("metrics_exact_schema.txt", &schema);
}

#[test]
fn metrics_json_matches_golden_at_any_thread_count() {
    let serial = telemetry_snapshot(&golden_scale()).to_json();
    let sharded = telemetry_snapshot(&golden_scale().with_threads(4)).to_json();
    // Bitwise determinism first: the golden never depends on threads.
    assert_eq!(
        serial, sharded,
        "sharded telemetry diverged from serial telemetry"
    );
    check_golden("metrics_tiny.json", &serial);
}
