//! Integration tests: driving the system through the raw ISA path and
//! checking functional correctness of the full compile → load → update →
//! generate → run → acquire chain.

use qtenon::compiler::{ParameterDiff, QtenonCompiler};
use qtenon::core::config::{CoreModel, QtenonConfig};
use qtenon::core::system::QtenonSystem;
use qtenon::core::vqa::unpack_measurements;
use qtenon::isa::Instruction;
use qtenon::quantum::{transpile, Circuit, ParamId, StateVector};
use qtenon::sim_engine::SimTime;

fn system(n: u32) -> (QtenonConfig, QtenonSystem) {
    let config = QtenonConfig::table4(n, CoreModel::Rocket).unwrap();
    let system = QtenonSystem::new(config).unwrap();
    (config, system)
}

#[test]
fn ghz_state_measured_through_the_full_path() {
    let n = 3;
    let (config, mut sys) = system(n);
    let mut c = Circuit::new(n);
    c.h(0).cx(0, 1).cx(1, 2).measure_all();
    let native = transpile::to_native(&c).unwrap();
    let program = QtenonCompiler::new(config.layout).compile(&native).unwrap();

    let mut now = SimTime::ZERO;
    // Load chunks.
    let chunks: Vec<_> = program
        .chunks()
        .iter()
        .enumerate()
        .filter(|(_, ch)| !ch.is_empty())
        .collect();
    for (load, (q, chunk)) in program.load_instructions(0x8000_0000).iter().zip(chunks) {
        if let Instruction::QSet {
            classical_addr,
            qaddr,
            ..
        } = load
        {
            assert_eq!(
                config.layout.decode(*qaddr).unwrap().qubit.unwrap().index(),
                q as u32
            );
            now = sys
                .q_set_program(now, *classical_addr, *qaddr, chunk)
                .unwrap();
        }
    }
    // Generate pulses and run.
    let items = program.work_items(&[]).unwrap();
    let (_, t) = sys.q_gen(now, &items).unwrap();
    let shots = 64;
    let outcome = sys.q_run(t, &native, shots).unwrap();

    // Acquire and unpack.
    let base = config.layout.measure_entry(0).unwrap();
    let (words, _) = sys
        .q_acquire(outcome.complete, base, shots, 0x9000_0000)
        .unwrap();
    let results = unpack_measurements(&words, n, shots);

    // GHZ: all qubits agree within each shot; both outcomes appear.
    let mut all_zero = 0;
    let mut all_one = 0;
    for bits in &results {
        let first = bits.get(0);
        for q in 1..n {
            assert_eq!(bits.get(q), first, "GHZ correlation violated");
        }
        if first {
            all_one += 1;
        } else {
            all_zero += 1;
        }
    }
    assert!(
        all_zero > 0 && all_one > 0,
        "both GHZ branches should appear"
    );
}

#[test]
fn q_update_changes_subsequent_runs() {
    // A parameterised RX on one qubit: binding θ=0 leaves the qubit at
    // |0⟩; updating to θ=π flips it — all through ISA instructions.
    let n = 2;
    let (config, mut sys) = system(n);
    let mut c = Circuit::new(n);
    c.rx_param(0, ParamId::new(0)).measure_all();
    let program = QtenonCompiler::new(config.layout).compile(&c).unwrap();
    assert_eq!(program.slots().len(), 1);

    let mut now = SimTime::ZERO;
    for instr in program.load_instructions(0x8000_0000) {
        if let Instruction::QSet {
            classical_addr,
            qaddr,
            ..
        } = instr
        {
            let q = config.layout.decode(qaddr).unwrap().qubit.unwrap();
            now = sys
                .q_set_program(
                    now,
                    classical_addr,
                    qaddr,
                    &program.chunks()[q.index() as usize],
                )
                .unwrap();
        }
    }

    for (theta, expect_one) in [(0.0f64, false), (std::f64::consts::PI, true)] {
        for instr in program.bind_instructions(&[theta]).unwrap() {
            if let Instruction::QUpdate { qaddr, value } = instr {
                now = sys.q_update(now, qaddr, value).unwrap();
            }
        }
        let items = program.work_items(&[theta]).unwrap();
        let (_, t) = sys.q_gen(now, &items).unwrap();
        let bound = c.bind(&[theta]).unwrap();
        let outcome = sys.q_run(t, &bound, 32).unwrap();
        now = outcome.complete;
        assert!(
            outcome.shots.iter().all(|s| s.get(0) == expect_one),
            "theta={theta} should give qubit0={expect_one}"
        );
    }
}

#[test]
fn incremental_updates_equal_full_rebind() {
    // Applying a ParameterDiff must leave the regfile identical to a
    // from-scratch bind at the new parameters.
    let n = 4;
    let (config, mut sys_incremental) = system(n);
    let (_, mut sys_rebind) = system(n);
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.ry_param(q, ParamId::new(q));
    }
    let native = transpile::to_native(&c).unwrap();
    let program = QtenonCompiler::new(config.layout).compile(&native).unwrap();

    let old = vec![0.1, 0.2, 0.3, 0.4];
    let new = vec![0.1, 0.9, 0.3, 0.7];

    // System A: bind old, apply diff.
    let mut now = SimTime::ZERO;
    for instr in program.bind_instructions(&old).unwrap() {
        if let Instruction::QUpdate { qaddr, value } = instr {
            now = sys_incremental.q_update(now, qaddr, value).unwrap();
        }
    }
    let updates_before = sys_incremental.comm().q_update_count;
    let diff = ParameterDiff::between(&program, &old, &new).unwrap();
    assert_eq!(diff.changed_slots(), 2);
    for instr in diff.update_instructions(&program).unwrap() {
        if let Instruction::QUpdate { qaddr, value } = instr {
            now = sys_incremental.q_update(now, qaddr, value).unwrap();
        }
    }
    assert_eq!(
        sys_incremental.comm().q_update_count - updates_before,
        2,
        "only changed slots travel"
    );

    // System B: bind new directly.
    let mut now_b = SimTime::ZERO;
    for instr in program.bind_instructions(&new).unwrap() {
        if let Instruction::QUpdate { qaddr, value } = instr {
            now_b = sys_rebind.q_update(now_b, qaddr, value).unwrap();
        }
    }

    for i in 0..program.slots().len() as u32 {
        assert_eq!(
            sys_incremental.qcc().regfile_by_index(i),
            sys_rebind.qcc().regfile_by_index(i),
            "slot {i} diverged"
        );
    }
}

#[test]
fn system_run_matches_direct_statevector() {
    // The system's chip (exact backend at this size) must agree with a
    // hand-driven state vector on marginal probabilities.
    let n = 2;
    let (_, mut sys) = system(n);
    let mut c = Circuit::new(n);
    c.ry(0, 1.1).cz(0, 1).ry(1, 0.6).measure_all();
    let shots = 4000;
    let outcome = sys.q_run(SimTime::ZERO, &c, shots).unwrap();
    let measured_p1: f64 = outcome.shots.iter().filter(|s| s.get(1)).count() as f64 / shots as f64;

    let mut sv = StateVector::new(n).unwrap();
    sv.apply_circuit(&c).unwrap();
    let exact_p1 = sv.probability_of_one(1);
    assert!(
        (measured_p1 - exact_p1).abs() < 0.03,
        "measured {measured_p1} vs exact {exact_p1}"
    );
}

#[test]
fn tracing_records_the_whole_instruction_flow() {
    use qtenon::core::trace::TraceLane;
    let n = 2;
    let (config, mut sys) = system(n);
    sys.set_tracing(true);
    let mut c = Circuit::new(n);
    c.rx(0, 1.0).cz(0, 1).measure_all();
    let program = QtenonCompiler::new(config.layout).compile(&c).unwrap();
    let mut now = SimTime::ZERO;
    for instr in program.load_instructions(0x8000_0000) {
        if let Instruction::QSet {
            classical_addr,
            qaddr,
            ..
        } = instr
        {
            let q = config.layout.decode(qaddr).unwrap().qubit.unwrap();
            now = sys
                .q_set_program(
                    now,
                    classical_addr,
                    qaddr,
                    &program.chunks()[q.index() as usize],
                )
                .unwrap();
        }
    }
    let items = program.work_items(&[]).unwrap();
    let (_, t) = sys.q_gen(now, &items).unwrap();
    let outcome = sys.q_run(t, &c, 8).unwrap();
    sys.put_results(outcome.complete, 0x9000_0000, 8).unwrap();

    let trace = sys.take_trace().unwrap();
    assert!(trace.len() >= 4, "expected q_set+q_gen+q_run+put events");
    assert!(trace.lane_busy(TraceLane::QuantumChip) > qtenon::sim_engine::SimDuration::ZERO);
    assert!(trace.lane_busy(TraceLane::PulsePipeline) > qtenon::sim_engine::SimDuration::ZERO);
    let json = trace.to_chrome_json();
    assert!(json.contains("q_run[8]"));
    assert!(json.contains("q_gen"));
    // Events are within the simulated timeline.
    for e in trace.events() {
        assert!(
            e.start + e.duration <= outcome.complete + qtenon::sim_engine::SimDuration::from_us(10)
        );
    }
}

#[test]
fn qasm_workload_runs_end_to_end() {
    use qtenon::quantum::{Hamiltonian, PauliTerm};
    use qtenon::workloads::{SpsaOptimizer, Workload, WorkloadKind};
    let src = r#"
        OPENQASM 2.0;
        qreg q[3];
        creg c[3];
        h q[0];
        cx q[0], q[1];
        cx q[1], q[2];
        measure q[0] -> c[0];
        measure q[1] -> c[1];
        measure q[2] -> c[2];
    "#;
    let h = Hamiltonian::new(3, vec![PauliTerm::zz(0, 2, 1.0)], 0.0);
    let workload = Workload::from_qasm(src, h, WorkloadKind::Qnn).unwrap();
    let config = QtenonConfig::table4(3, CoreModel::Rocket).unwrap();
    let mut runner = qtenon::core::vqa::VqaRunner::new(config, workload).unwrap();
    let report = runner.run(&mut SpsaOptimizer::new(1), 1, 200).unwrap();
    // GHZ: perfect ZZ correlation between qubits 0 and 2 → cost ≈ +1.
    assert!(report.final_cost > 0.9, "cost {}", report.final_cost);
}

#[test]
fn assembly_text_round_trips_through_encoding() {
    let samples = [
        "q_update @0x70000, 0x1234",
        "q_set 0x80000000, @0x400, 285",
        "q_acquire 0x90000000, @0x71000, 500",
        "q_gen @0x0, 1024",
        "q_run 500",
    ];
    for text in samples {
        let instr = Instruction::parse_asm(text).unwrap();
        let enc = instr.encode();
        let bits = enc.word.encode();
        let word = qtenon::isa::RoccWord::decode(bits).unwrap();
        let back = Instruction::decode(&qtenon::isa::EncodedInstruction {
            word,
            rs1_value: enc.rs1_value,
            rs2_value: enc.rs2_value,
        })
        .unwrap();
        assert_eq!(back, instr, "{text}");
    }
}
