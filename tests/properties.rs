//! Cross-crate property-based tests.

use proptest::prelude::*;

use qtenon::compiler::{ParameterDiff, QtenonCompiler};
use qtenon::isa::{EncodedAngle, Instruction, QAddress, QccLayout, QubitId};
use qtenon::quantum::{transpile, BitString, Circuit, Gate, Operation, ParamId, StateVector};
use qtenon::workloads::Graph;

/// Strategy: a random logical circuit over `n` qubits.
fn arb_circuit(n: u32, max_ops: usize) -> impl Strategy<Value = Circuit> {
    let op = (0u8..8, 0..n, 0..n, -6.0f64..6.0);
    prop::collection::vec(op, 0..max_ops).prop_map(move |ops| {
        let mut c = Circuit::new(n);
        for (kind, a, b, theta) in ops {
            let gate = match kind {
                0 => Gate::H,
                1 => Gate::X,
                2 => Gate::S,
                3 => Gate::T,
                4 => Gate::Rx(theta.into()),
                5 => Gate::Ry(theta.into()),
                6 => Gate::Rz(theta.into()),
                _ => Gate::Cx,
            };
            let (qubit, qubit2) = if gate.arity() == 2 {
                if a == b {
                    continue;
                }
                (a, Some(b))
            } else {
                (a, None)
            };
            c.push(Operation {
                gate,
                qubit,
                qubit2,
            })
            .unwrap();
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpiled_circuits_are_native_and_norm_preserving(
        circuit in arb_circuit(4, 24)
    ) {
        let native = transpile::to_native(&circuit).unwrap();
        prop_assert!(transpile::is_native(&native));
        let mut sv = StateVector::new(4).unwrap();
        sv.apply_circuit(&native).unwrap();
        prop_assert!((sv.norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn transpile_preserves_marginals_vs_known_gates(
        thetas in prop::collection::vec(-6.0f64..6.0, 3)
    ) {
        // X/H built from rotations behave like the direct rotations.
        let mut logical = Circuit::new(2);
        logical.h(0).rx(0, thetas[0]).cx(0, 1).ry(1, thetas[1]).rz(0, thetas[2]);
        let native = transpile::to_native(&logical).unwrap();
        let mut sv = StateVector::new(2).unwrap();
        sv.apply_circuit(&native).unwrap();
        // Equivalent construction: H = RZ(pi) RY(pi/2); CX via CZ.
        let probs: Vec<f64> = (0..2).map(|q| sv.probability_of_one(q)).collect();
        for p in probs {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&p));
        }
    }

    #[test]
    fn compiled_programs_preserve_gate_counts(circuit in arb_circuit(6, 40)) {
        let native = transpile::to_native(&circuit).unwrap();
        let layout = QccLayout::for_qubits(6).unwrap();
        let program = QtenonCompiler::new(layout).compile(&native).unwrap();
        prop_assert_eq!(
            program.total_entries() as usize,
            native.operations().len()
        );
        // Work items mirror entries one-to-one.
        let items = program.work_items(&[]).unwrap();
        prop_assert_eq!(items.len() as u64, program.total_entries());
    }

    #[test]
    fn incremental_diff_is_sound_and_minimal(
        old in prop::collection::vec(-3.0f64..3.0, 5),
        new in prop::collection::vec(-3.0f64..3.0, 5),
    ) {
        let mut c = Circuit::new(5);
        for q in 0..5u32 {
            c.ry_param(q, ParamId::new(q));
        }
        let layout = QccLayout::for_qubits(5).unwrap();
        let program = QtenonCompiler::new(layout).compile(&c).unwrap();
        let diff = ParameterDiff::between(&program, &old, &new).unwrap();
        // Sound: the changed count equals the number of slots whose
        // encoded value differs.
        let expected = old.iter().zip(&new).filter(|(a, b)| {
            EncodedAngle::from_radians(**a) != EncodedAngle::from_radians(**b)
        }).count();
        prop_assert_eq!(diff.changed_slots(), expected);
        // Minimal: no update for identical vectors.
        let noop = ParameterDiff::between(&program, &new, &new).unwrap();
        prop_assert_eq!(noop.changed_slots(), 0);
    }

    #[test]
    fn instruction_encoding_round_trips(
        raw_addr in 0u64..(1 << 39),
        value in any::<u32>(),
        length in 0u64..(1 << 25),
        shots in any::<u64>(),
        caddr in any::<u64>(),
    ) {
        let qaddr = QAddress::new(raw_addr).unwrap();
        for instr in [
            Instruction::QUpdate { qaddr, value },
            Instruction::QSet { classical_addr: caddr, qaddr, length },
            Instruction::QAcquire { classical_addr: caddr, qaddr, length },
            Instruction::QGen { qaddr, length },
            Instruction::QRun { shots },
        ] {
            let enc = instr.encode();
            prop_assert_eq!(Instruction::decode(&enc).unwrap(), instr);
            // Textual form round-trips too.
            let parsed = Instruction::parse_asm(&instr.to_string()).unwrap();
            prop_assert_eq!(parsed, instr);
        }
    }

    #[test]
    fn qaddress_layout_decode_is_inverse_of_encode(
        qubit in 0u32..64,
        prog_entry in 0u64..1024,
        pulse_entry in 0u64..1024,
    ) {
        let layout = QccLayout::for_qubits(64).unwrap();
        let p = layout.program_entry(QubitId::new(qubit), prog_entry).unwrap();
        let d = layout.decode(p).unwrap();
        prop_assert_eq!(d.qubit.unwrap().index(), qubit);
        prop_assert_eq!(d.entry, prog_entry);
        let u = layout.pulse_entry(QubitId::new(qubit), pulse_entry).unwrap();
        let d = layout.decode(u).unwrap();
        prop_assert_eq!(d.entry, pulse_entry);
    }

    #[test]
    fn bitstring_set_get_consistency(
        len in 1u32..300,
        ops in prop::collection::vec((0u32..300, any::<bool>()), 0..64)
    ) {
        let mut bits = BitString::zeros(len);
        let mut model = vec![false; len as usize];
        for (i, v) in ops {
            let i = i % len;
            bits.set(i, v);
            model[i as usize] = v;
        }
        for i in 0..len {
            prop_assert_eq!(bits.get(i), model[i as usize]);
        }
        prop_assert_eq!(
            bits.count_ones() as usize,
            model.iter().filter(|&&b| b).count()
        );
    }

    #[test]
    fn graph_matchings_partition_edges(n in 4u32..40) {
        let n = n - n % 2;
        let g = Graph::circulant_3_regular(n.max(4));
        let groups = g.matchings();
        // Every edge appears exactly once.
        let total: usize = groups.iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.edges().len());
        // Within a group, no vertex repeats.
        for group in &groups {
            let mut seen = std::collections::HashSet::new();
            for &(u, v, _) in group {
                prop_assert!(seen.insert(u), "vertex {} repeated", u);
                prop_assert!(seen.insert(v), "vertex {} repeated", v);
            }
        }
        // Greedy edge coloring of a degree-3 graph needs at most 2·3−1
        // groups.
        prop_assert!(groups.len() <= 5);
    }

    #[test]
    fn angle_encoding_error_is_bounded(theta in -100.0f64..100.0) {
        let enc = EncodedAngle::from_radians(theta);
        let err = (enc.to_radians() - theta.rem_euclid(std::f64::consts::TAU)).abs();
        // Off by at most one code step (or a full turn at the wrap edge).
        let step = std::f64::consts::TAU / (1u64 << 27) as f64;
        prop_assert!(err <= step || (err - std::f64::consts::TAU).abs() <= step);
    }
}
