//! Integration tests: full system runs across crates.

use qtenon::baseline::{BaselineConfig, BaselineRunner};
use qtenon::core::config::{CoreModel, QtenonConfig, SyncMode, TransmissionPolicy};
use qtenon::core::vqa::VqaRunner;
use qtenon::sim_engine::SimDuration;
use qtenon::workloads::{
    GradientDescentOptimizer, Optimizer, SpsaOptimizer, Workload, WorkloadKind,
};

const ITERS: usize = 2;
const SHOTS: u64 = 100;
const SEED: u64 = 7;

fn qtenon(kind: WorkloadKind, n: u32, core: CoreModel) -> qtenon::core::report::RunReport {
    let config = QtenonConfig::table4(n, core).unwrap();
    let workload = Workload::benchmark(kind, n, SEED).unwrap();
    VqaRunner::new(config, workload)
        .unwrap()
        .run(&mut SpsaOptimizer::new(SEED), ITERS, SHOTS)
        .unwrap()
}

fn baseline(kind: WorkloadKind, n: u32) -> qtenon::core::report::RunReport {
    let workload = Workload::benchmark(kind, n, SEED).unwrap();
    BaselineRunner::new(BaselineConfig::default(), workload)
        .run(&mut SpsaOptimizer::new(SEED), ITERS, SHOTS)
        .unwrap()
}

#[test]
fn qtenon_beats_baseline_on_every_workload() {
    for kind in WorkloadKind::ALL {
        let b = baseline(kind, 16);
        let q = qtenon(kind, 16, CoreModel::Rocket);
        assert!(
            b.total > q.total,
            "{kind}: baseline {} should exceed qtenon {}",
            b.total,
            q.total
        );
        assert!(
            b.classical_time() > q.classical_time() * 10,
            "{kind}: classical speedup should be an order of magnitude"
        );
    }
}

#[test]
fn end_to_end_speedup_grows_with_qubits() {
    // The paper's central scaling trend (Figs. 11b/12b).
    let mut last = 0.0;
    for n in [8u32, 24, 48] {
        let b = baseline(WorkloadKind::Vqe, n);
        let q = qtenon(WorkloadKind::Vqe, n, CoreModel::Rocket);
        let speedup = b.total.as_ns() / q.total.as_ns();
        assert!(
            speedup > last,
            "speedup should grow: {speedup} after {last} at n={n}"
        );
        last = speedup;
    }
}

#[test]
fn quantum_dominates_qtenon_but_not_baseline() {
    let q = qtenon(WorkloadKind::Vqe, 32, CoreModel::BoomLarge);
    let b = baseline(WorkloadKind::Vqe, 32);
    assert!(q.exposed_shares()[0] > 0.5, "qtenon quantum share too low");
    assert!(
        b.exposed_shares()[0] < 0.35,
        "baseline quantum share too high"
    );
}

#[test]
fn both_systems_produce_identical_physics() {
    // Same workload, same seeds, same optimizer: both systems sample the
    // same simulated chip, so their cost trajectories must agree.
    let kind = WorkloadKind::Qaoa;
    let q = qtenon(kind, 8, CoreModel::Rocket);
    let b = baseline(kind, 8);
    assert_eq!(q.cost_history.len(), b.cost_history.len());
    for (a, c) in q.cost_history.iter().zip(&b.cost_history) {
        assert!((a - c).abs() < 1e-9, "cost divergence: {a} vs {c}");
    }
}

#[test]
fn software_features_stack_monotonically() {
    // Hardware-only < +fine-grained sync < +batched scheduling.
    let workload = Workload::benchmark(WorkloadKind::Vqe, 16, SEED).unwrap();
    let run = |sync: SyncMode, policy: TransmissionPolicy| {
        let config = QtenonConfig::table4(16, CoreModel::Rocket)
            .unwrap()
            .with_sync(sync)
            .with_transmission(policy);
        VqaRunner::new(config, workload.clone())
            .unwrap()
            .run(&mut SpsaOptimizer::new(SEED), ITERS, SHOTS)
            .unwrap()
            .total
    };
    let fence = run(SyncMode::Fence, TransmissionPolicy::Batched);
    let unscheduled = run(SyncMode::FineGrained, TransmissionPolicy::Immediate);
    let full = run(SyncMode::FineGrained, TransmissionPolicy::Batched);
    // The full software stack wins outright…
    assert!(
        fence > full,
        "fine-grained + batched should beat FENCE: {fence} vs {full}"
    );
    // …and fine-grained sync *without* Algorithm 1 is not enough: the
    // per-shot wakeups make overlap unprofitable (the paper's motivation
    // for batched transmission).
    assert!(
        unscheduled > full,
        "batching should help under fine-grained sync: {unscheduled} vs {full}"
    );
}

#[test]
fn gd_and_spsa_trade_comm_for_rounds() {
    // GD: many single-parameter evaluations → more dynamic instructions
    // and more communication events than SPSA at the same iterations.
    let workload = Workload::benchmark(WorkloadKind::Vqe, 8, SEED).unwrap();
    let run = |opt: &mut dyn Optimizer| {
        let config = QtenonConfig::table4(8, CoreModel::Rocket).unwrap();
        VqaRunner::new(config, workload.clone())
            .unwrap()
            .run(opt, ITERS, SHOTS)
            .unwrap()
    };
    let gd = run(&mut GradientDescentOptimizer::new(0.05));
    let spsa = run(&mut SpsaOptimizer::new(SEED));
    assert!(gd.dynamic_instructions > spsa.dynamic_instructions);
    assert!(gd.comm.q_acquire_count > spsa.comm.q_acquire_count);
    // And GD leaves more of the pulse cache intact (Table 5).
    assert!(gd.pulse_reduction > spsa.pulse_reduction);
}

#[test]
fn optimisation_actually_descends() {
    // Over enough iterations GD should find a better point on QAOA's
    // landscape and must not diverge. Triage note: the old knife-edge
    // `last < first` at 6 iterations / 300 shots rode on the exact
    // sampled values of the sequential RNG; the per-shot streams that
    // make shot-sharded execution deterministic (see DESIGN.md,
    // "Parallel execution model") resample every shot, so this asserts
    // the descent *property* — best-visited cost improves, final cost
    // stays within shot noise of the start — rather than one stream's
    // final sample.
    let config = QtenonConfig::table4(8, CoreModel::Rocket).unwrap();
    let workload = Workload::qaoa(8, 2, 3).unwrap();
    let mut runner = VqaRunner::new(config, workload).unwrap();
    let report = runner
        .run(&mut GradientDescentOptimizer::new(0.1), 10, 400)
        .unwrap();
    let first = *report.cost_history.first().unwrap();
    let last = *report.cost_history.last().unwrap();
    let best = report
        .cost_history
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    assert!(
        best < first,
        "GD never improved on the starting QAOA cost: first {first}, best {best}"
    );
    // One-sigma shot noise at 400 shots on a cost bounded by the edge
    // count is well under 0.2; anything beyond that is divergence.
    assert!(
        last < first + 0.2,
        "GD diverged: first {first}, last {last}"
    );
}

#[test]
fn breakdown_components_are_bounded() {
    let r = qtenon(WorkloadKind::Qnn, 16, CoreModel::Rocket);
    // Quantum busy time can never exceed wall time (it is never
    // overlapped with itself).
    assert!(r.breakdown.quantum <= r.total);
    // Exposed shares form a distribution.
    let shares = r.exposed_shares();
    assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    assert!(shares.iter().all(|s| (0.0..=1.0).contains(s)));
    // Communication is negligible on the tightly coupled system.
    assert!(r.comm.total() < r.total / 20);
}

#[test]
fn reports_are_reproducible() {
    let a = qtenon(WorkloadKind::Qaoa, 8, CoreModel::Rocket);
    let b = qtenon(WorkloadKind::Qaoa, 8, CoreModel::Rocket);
    assert_eq!(a, b);
}

#[test]
fn boom_never_slower_than_rocket() {
    for kind in WorkloadKind::ALL {
        let rocket = qtenon(kind, 16, CoreModel::Rocket);
        let boom = qtenon(kind, 16, CoreModel::BoomLarge);
        assert!(
            boom.total <= rocket.total,
            "{kind}: boom {} vs rocket {}",
            boom.total,
            rocket.total
        );
    }
}

#[test]
fn larger_systems_take_longer_on_both_sides() {
    {
        let (small, large) = (8u32, 32u32);
        let qs = qtenon(WorkloadKind::Vqe, small, CoreModel::Rocket);
        let ql = qtenon(WorkloadKind::Vqe, large, CoreModel::Rocket);
        assert!(ql.total > qs.total);
        let bs = baseline(WorkloadKind::Vqe, small);
        let bl = baseline(WorkloadKind::Vqe, large);
        assert!(bl.total > bs.total);
    }
}

#[test]
fn shots_scale_quantum_time_linearly() {
    let config = QtenonConfig::table4(8, CoreModel::Rocket).unwrap();
    let workload = Workload::qaoa(8, 2, SEED).unwrap();
    let run = |shots: u64| {
        VqaRunner::new(config, workload.clone())
            .unwrap()
            .run(&mut SpsaOptimizer::new(SEED), 1, shots)
            .unwrap()
            .breakdown
            .quantum
    };
    let q100 = run(100);
    let q200 = run(200);
    let delta = q200.as_ns() / q100.as_ns();
    assert!((delta - 2.0).abs() < 0.1, "quantum time ratio {delta}");
    assert!(q100 > SimDuration::ZERO);
}
