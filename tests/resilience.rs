//! Acceptance test for the fault-injection and resilience layer: a
//! 64-qubit VQE run under non-zero fault rates must complete, report its
//! recovery work in the exported metrics, and reproduce exactly under the
//! same seed.

use qtenon::core::config::{CoreModel, QtenonConfig};
use qtenon::core::vqa::VqaRunner;
use qtenon::sim_engine::{FaultPlan, MetricsRegistry};
use qtenon::workloads::{SpsaOptimizer, Workload, WorkloadKind};

fn vqe_64_under_faults(plan: FaultPlan) -> (qtenon::core::report::RunReport, String) {
    let config = QtenonConfig::table4(64, CoreModel::Rocket)
        .unwrap()
        .with_seed(42)
        .with_faults(plan);
    let workload = Workload::benchmark(WorkloadKind::Vqe, 64, 42).unwrap();
    let mut runner = VqaRunner::new(config, workload).unwrap();
    let report = runner.run(&mut SpsaOptimizer::new(42), 1, 50).unwrap();
    let mut m = MetricsRegistry::new();
    runner.export_metrics(&mut m);
    (report, m.snapshot().to_json())
}

#[test]
fn faulty_64q_vqe_completes_reports_and_reproduces() {
    let plan = FaultPlan::all(0.01).with_seed(0xFA17);
    let (report, metrics) = vqe_64_under_faults(plan);

    // Graceful degradation: the run completed and absorbed real faults.
    assert!(report.final_cost.is_finite());
    assert!(
        report.resilience.faults_injected > 0,
        "{:?}",
        report.resilience
    );
    assert!(
        report.resilience.total_retries() > 0,
        "{:?}",
        report.resilience
    );

    // The recovery work is visible in the exported metric tree.
    assert!(metrics.contains("faults.injected.total"), "{metrics}");
    assert!(metrics.contains("resilience.retries"), "{metrics}");

    // Same plan, same seed: bit-identical report and metric tree.
    let (report2, metrics2) = vqe_64_under_faults(plan);
    assert_eq!(report, report2);
    assert_eq!(metrics, metrics2);

    // A different fault seed produces a different fault schedule (the
    // counters are seed-dependent, not rate-schedule artefacts).
    let (report3, _) = vqe_64_under_faults(plan.with_seed(0xBEEF));
    assert!(report3.final_cost.is_finite());
    assert_ne!(report.resilience, report3.resilience);
}

#[test]
fn inert_plan_leaves_64q_metrics_free_of_fault_namespaces() {
    let (report, metrics) = vqe_64_under_faults(FaultPlan::default());
    assert!(report.resilience.is_zero());
    assert!(!metrics.contains("faults."), "{metrics}");
    assert!(!metrics.contains("resilience."), "{metrics}");
}
