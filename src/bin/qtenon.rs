//! The `qtenon` command-line tool: run OpenQASM programs on the simulated
//! tightly coupled system, disassemble compiled programs, and export
//! execution traces.
//!
//! ```text
//! qtenon run <file.qasm> [--shots N] [--seed S] [--noise]   # execute on the system
//!             [--threads T]                                 # shot-sharded sampling
//!             [--metrics out.json] [--trace out.json]       # telemetry export
//!             [--faults SPEC|FILE] [--fault-seed S]         # fault injection
//!             [--profile]                                   # phase attribution table
//!             [--critpath]                                  # who-blocks-whom table
//!             [--no-fuse]                                   # disable gate fusion
//!             [--cache] [--cache-capacity N]                # compile through a cache
//! qtenon disasm <file.qasm>                                 # compiled chunk listing
//! qtenon trace <file.qasm> [--shots N]                      # Chrome trace JSON to stdout
//! qtenon batch --jobs <spec.json> [--threads T]             # multi-job fleet
//!             [--metrics out.json] [--job-metrics DIR]      # fleet + per-job artefacts
//!             [--only NAME] [--profile] [--critpath]        # run one job standalone
//!             [--retries N] [--deadline NS]                 # containment overrides
//!             [--ledger PATH] [--no-fuse]                   # ledger + fusion toggle
//!             [--no-cache] [--cache-capacity N]             # fleet compilation cache
//! qtenon batch --chaos [--threads T] [--ledger PATH]        # chaos campaign
//!             [--metrics out.json]                          # resilience telemetry
//! ```
//!
//! `--profile` prints the per-phase latency-attribution table after the
//! run. The table derives purely from simulated time, so it is
//! byte-identical at any `--threads` value and whether or not the flag
//! was passed (the flag only controls printing plus an extra wall-clock
//! section that is explicitly unstable).
//!
//! `--critpath` prints the causal critical-path table: per-edge
//! blocking-time attribution (who blocks whom) plus each component's
//! share of the end-to-end on-path time. Like the phase table it is pure
//! sim time — byte-identical at any `--threads` value and across
//! batch-vs-standalone execution. With `--trace`, the path is also
//! painted into the Chrome trace as a highlighted `critpath` flow lane.
//!
//! `--metrics PATH` writes the full metric tree as JSON to `PATH`, a
//! Prometheus text rendering to `PATH.prom`, and prints a human-readable
//! report to stdout. `--trace PATH` records the flow-annotated Chrome
//! trace to `PATH` (open with Perfetto / `chrome://tracing`).
//!
//! `--faults` takes either an inline spec (`all=0.01,max_attempts=5` or
//! per-site rates like `bus_drop=0.02,slt_bitflip=0.001`) or a path to a
//! file holding the same format, one pair per line with `#` comments.
//! `--fault-seed` overrides the plan's deterministic seed: the same spec,
//! seed, and program reproduce the exact same faults and recoveries.
//!
//! `--threads T` fans shot sampling out across `T` worker threads. The
//! shard merge is bitwise deterministic: any `T` produces results (and
//! metrics, and fault accounting) identical to `--threads 1`.
//!
//! `--no-fuse` disables gate fusion in the exact statevector backend.
//! Fusion is a pure performance optimisation — fused and unfused
//! execution produce bitwise-identical shots and artefacts (only the
//! `quantum.fuse.*` accounting counters differ) — so the flag exists for
//! differential verification and benchmarking, not correctness.
//!
//! The fleet compilation cache (DESIGN.md §14) is on by default for
//! `batch` — near-identical jobs share whole compiles and pulse streams
//! — and off for single runs (`run --cache` opts in, routing the one
//! compile through a private cache and printing its statistics).
//! `--no-cache` disables it for a batch; `--cache-capacity N` bounds
//! the entries kept per cache level. Like fusion it is purely a
//! wall-clock knob: a hit returns byte-identical artefacts to a cold
//! compile, so no per-job report, metric file, or ledger ever depends
//! on the flag. Fleet-level `cache.fleet.*` counters land in the
//! `--metrics` export only.
//!
//! `batch` admits every job in a JSON spec into the deterministic batch
//! scheduler and runs them over one shared pool of `--threads` threads.
//! `--job-metrics DIR` writes each job's metrics JSON to
//! `DIR/<name>.json`; those files are byte-identical at any thread
//! count, and identical to running the same job alone (e.g. via
//! `--only NAME --threads 1`). `--metrics` writes the fleet-level
//! `jobs.*` and `resilience.jobs.*` telemetry to `PATH` (JSON) and
//! `PATH.prom` (Prometheus text format).
//!
//! Jobs are fault-contained: a panicking job is quarantined, a job past
//! its sim-time deadline is cut at the next iteration boundary, and
//! transient failures retry deterministically within the spec's budget.
//! `--retries N` / `--deadline NS` override the budget and deadline for
//! every job in the fleet. `--ledger PATH` writes the outcome ledger —
//! one tab-separated row per job with outcome, attempts, and failure
//! attribution — which is byte-identical at any `--threads` value. An
//! empty fleet (empty `jobs` array, or `--only` matching nothing)
//! renders a fixed placeholder ledger and exits 0; any failed,
//! timed-out, or quarantined job makes the exit code nonzero after a
//! per-job failure table.
//!
//! `batch --chaos` ignores `--jobs` and instead sweeps fault-injection
//! rates × retry budgets over a synthetic fleet (healthy, faulty,
//! flaky, deadline-bounded, and deliberately-panicking jobs), replaying
//! every cell at pool widths 1 and `--threads` and checking the
//! containment invariants per cell: ledgers byte-identical across
//! widths, retries bounded by budget, and survivors' artefacts
//! byte-identical to standalone runs. Exit is nonzero if any cell
//! violates an invariant.

use std::collections::BTreeMap;
use std::process::ExitCode;

use qtenon::compiler::QtenonCompiler;
use qtenon::core::chaos::ChaosCampaign;
use qtenon::core::config::{CoreModel, QtenonConfig};
use qtenon::core::jobs::{BatchReport, BatchSpec};
use qtenon::core::system::QtenonSystem;
use qtenon::isa::{disasm, QubitId};
use qtenon::quantum::noise::NoiseModel;
use qtenon::quantum::{qasm, transpile, Circuit};
use qtenon::sim_engine::{FaultPlan, MetricsRegistry, SimDuration, SimTime};

struct Args {
    command: String,
    file: String,
    shots: u64,
    seed: u64,
    threads: usize,
    noise: bool,
    metrics: Option<String>,
    trace_out: Option<String>,
    faults: Option<String>,
    fault_seed: Option<u64>,
    profile: bool,
    critpath: bool,
    no_fuse: bool,
    cache: bool,
    cache_capacity: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let mut file = None;
    let mut shots = 1000u64;
    let mut seed = 42u64;
    let mut threads = 1usize;
    let mut noise = false;
    let mut metrics = None;
    let mut trace_out = None;
    let mut faults = None;
    let mut fault_seed = None;
    let mut profile = false;
    let mut critpath = false;
    let mut no_fuse = false;
    let mut cache = false;
    let mut cache_capacity = qtenon::compiler::cache::DEFAULT_CAPACITY;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--profile" => profile = true,
            "--critpath" => critpath = true,
            "--no-fuse" => no_fuse = true,
            "--cache" => cache = true,
            "--cache-capacity" => {
                cache_capacity = argv
                    .next()
                    .ok_or("--cache-capacity needs a value")?
                    .parse::<usize>()
                    .map_err(|e| format!("bad --cache-capacity: {e}"))?
                    .max(1);
            }
            "--shots" => {
                shots = argv
                    .next()
                    .ok_or("--shots needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --shots: {e}"))?;
            }
            "--seed" => {
                seed = argv
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--threads" => {
                threads = argv
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--noise" => noise = true,
            "--metrics" => {
                metrics = Some(argv.next().ok_or("--metrics needs a path")?);
            }
            "--trace" => {
                trace_out = Some(argv.next().ok_or("--trace needs a path")?);
            }
            "--faults" => {
                faults = Some(argv.next().ok_or("--faults needs a spec or file")?);
            }
            "--fault-seed" => {
                fault_seed = Some(
                    argv.next()
                        .ok_or("--fault-seed needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --fault-seed: {e}"))?,
                );
            }
            other if file.is_none() && !other.starts_with("--") => {
                file = Some(other.to_string());
            }
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    Ok(Args {
        command,
        file: file.ok_or_else(usage)?,
        shots,
        seed,
        threads,
        noise,
        metrics,
        trace_out,
        faults,
        fault_seed,
        profile,
        critpath,
        no_fuse,
        cache,
        cache_capacity,
    })
}

fn usage() -> String {
    "usage: qtenon <run|disasm|trace> <file.qasm> [--shots N] [--seed S] [--threads T] \
     [--noise] [--metrics out.json] [--trace out.json] [--faults SPEC|FILE] [--fault-seed S] \
     [--profile] [--critpath] [--no-fuse] [--cache] [--cache-capacity N]\n\
     \u{20}      qtenon batch --jobs <spec.json> [--threads T] [--metrics out.json] \
     [--job-metrics DIR] [--only NAME] [--profile] [--critpath] \
     [--retries N] [--deadline NS] [--ledger PATH] [--no-fuse] \
     [--no-cache] [--cache-capacity N]\n\
     \u{20}      qtenon batch --chaos [--threads T] [--metrics out.json] [--ledger PATH]"
        .into()
}

struct BatchArgs {
    jobs: Option<String>,
    threads: usize,
    metrics: Option<String>,
    job_metrics: Option<String>,
    only: Option<String>,
    profile: bool,
    critpath: bool,
    retries: Option<u32>,
    deadline_ns: Option<u64>,
    ledger: Option<String>,
    chaos: bool,
    no_fuse: bool,
    no_cache: bool,
    cache_capacity: Option<usize>,
}

fn parse_batch_args(mut argv: impl Iterator<Item = String>) -> Result<BatchArgs, String> {
    let mut jobs = None;
    let mut threads = 1usize;
    let mut metrics = None;
    let mut job_metrics = None;
    let mut only = None;
    let mut profile = false;
    let mut critpath = false;
    let mut retries = None;
    let mut deadline_ns = None;
    let mut ledger = None;
    let mut chaos = false;
    let mut no_fuse = false;
    let mut no_cache = false;
    let mut cache_capacity = None;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--profile" => profile = true,
            "--critpath" => critpath = true,
            "--chaos" => chaos = true,
            "--no-fuse" => no_fuse = true,
            "--no-cache" => no_cache = true,
            "--cache-capacity" => {
                cache_capacity = Some(
                    argv.next()
                        .ok_or("--cache-capacity needs a value")?
                        .parse::<usize>()
                        .map_err(|e| format!("bad --cache-capacity: {e}"))?
                        .max(1),
                );
            }
            "--jobs" => jobs = Some(argv.next().ok_or("--jobs needs a path")?),
            "--threads" => {
                threads = argv
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--metrics" => metrics = Some(argv.next().ok_or("--metrics needs a path")?),
            "--job-metrics" => {
                job_metrics = Some(argv.next().ok_or("--job-metrics needs a directory")?);
            }
            "--only" => only = Some(argv.next().ok_or("--only needs a job name")?),
            "--retries" => {
                retries = Some(
                    argv.next()
                        .ok_or("--retries needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --retries: {e}"))?,
                );
            }
            "--deadline" => {
                deadline_ns = Some(
                    argv.next()
                        .ok_or("--deadline needs a sim-time value in ns")?
                        .parse()
                        .map_err(|e| format!("bad --deadline: {e}"))?,
                );
            }
            "--ledger" => ledger = Some(argv.next().ok_or("--ledger needs a path")?),
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    if jobs.is_none() && !chaos {
        return Err(format!("batch needs --jobs <spec.json>\n{}", usage()));
    }
    Ok(BatchArgs {
        jobs,
        threads,
        metrics,
        job_metrics,
        only,
        profile,
        critpath,
        retries,
        deadline_ns,
        ledger,
        chaos,
        no_fuse,
        no_cache,
        cache_capacity,
    })
}

/// `qtenon batch`: run a JSON-specified fleet of VQA jobs over one
/// shared worker pool and report per-job plus fleet-level results.
fn run_batch(argv: impl Iterator<Item = String>) -> Result<(), String> {
    let args = parse_batch_args(argv)?;
    if args.chaos {
        return run_chaos(&args);
    }
    let jobs_path = args.jobs.as_deref().expect("parse_batch_args requires it");
    let text =
        std::fs::read_to_string(jobs_path).map_err(|e| format!("cannot read {jobs_path}: {e}"))?;
    let mut spec = BatchSpec::from_json(&text).map_err(|e| e.to_string())?;
    if let Some(name) = &args.only {
        // Seeds were materialised at parse time by array position, so
        // filtering cannot change what the surviving job runs with.
        spec.jobs.retain(|j| j.name == *name);
    }
    if let Some(retries) = args.retries {
        for job in &mut spec.jobs {
            job.retry_budget = retries;
        }
    }
    if let Some(ns) = args.deadline_ns {
        for job in &mut spec.jobs {
            job.deadline = Some(SimDuration::from_ns(ns));
        }
    }
    if args.no_fuse {
        for job in &mut spec.jobs {
            job.fuse = false;
        }
    }
    if args.no_cache {
        spec.cache = false;
    }
    if let Some(capacity) = args.cache_capacity {
        spec.cache_capacity = capacity;
    }
    if spec.jobs.is_empty() {
        // An empty fleet (empty `jobs` array, or `--only` that matched
        // nothing) is a healthy no-op: fixed placeholder ledger, exit 0.
        print!("{}", BatchReport::empty_ledger());
        if let Some(path) = &args.ledger {
            std::fs::write(path, BatchReport::empty_ledger())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        return Ok(());
    }
    let scheduler = spec.into_scheduler().map_err(|e| e.to_string())?;
    let batch = scheduler.run(args.threads).map_err(|e| e.to_string())?;

    println!(
        "fleet: {} jobs over {} job workers x {} shard threads, wall {:.3}s",
        batch.results.len(),
        batch.pool.job_workers,
        batch.pool.shard_threads,
        batch.wall.as_secs_f64(),
    );
    for r in &batch.results {
        println!(
            "  [{:>2}] {:<16} seed {:#018x} prio {} {}: {} (attempts {}), \
             wait {:.3}s, turnaround {:.3}s",
            r.id.index(),
            r.name,
            r.seed,
            r.priority,
            r.outcome.label(),
            r.outcome.detail(),
            r.outcome.attempts(),
            r.wait.as_secs_f64(),
            r.turnaround.as_secs_f64(),
        );
    }
    println!(
        "throughput: {:.2} jobs/s, {:.0} shots/s ({} completed, {} timed-out, \
         {} quarantined, {} failed, {} retries, {} rejected)",
        batch.jobs_per_second(),
        batch.shots_per_second(),
        batch.completed(),
        batch.timed_out(),
        batch.quarantined(),
        batch.failed() - batch.timed_out() - batch.quarantined(),
        batch.total_retries(),
        batch.rejected,
    );
    if let Some(stats) = &batch.cache_stats {
        println!("{}", stats.describe());
    }

    if args.profile {
        for r in &batch.results {
            if let Some(a) = r.outcome.artifacts() {
                println!(
                    "\nphase attribution for {} (sim time, deterministic):",
                    r.name
                );
                print!("{}", a.report.phases.render());
            }
        }
    }
    if args.critpath {
        for r in &batch.results {
            if let Some(a) = r.outcome.artifacts() {
                println!("\ncritical path for {} (sim time, deterministic):", r.name);
                print!("{}", a.report.critpath.render());
            }
        }
    }
    if let Some(dir) = &args.job_metrics {
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
        for r in &batch.results {
            if let Some(a) = r.outcome.artifacts() {
                let path = format!("{dir}/{}.json", r.name);
                std::fs::write(&path, &a.metrics_json)
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
            }
        }
        println!("per-job metrics written to {dir}/<name>.json");
    }
    if let Some(path) = &args.ledger {
        std::fs::write(path, batch.ledger()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("job ledger written to {path}");
    }
    if let Some(path) = &args.metrics {
        write_metrics_pair(path, |registry| batch.export_metrics(registry))?;
        println!("fleet metrics written to {path} (JSON) and {path}.prom (Prometheus)");
    }
    if batch.failed() > 0 {
        // Per-job failure table with attribution, then a nonzero exit.
        eprintln!("failed jobs:");
        eprintln!("idx\tname\toutcome\tattempts\tdetail");
        for r in batch.results.iter().filter(|r| !r.outcome.is_completed()) {
            eprintln!(
                "{}\t{}\t{}\t{}\t{}",
                r.id.index(),
                r.name,
                r.outcome.label(),
                r.outcome.attempts(),
                r.outcome.detail(),
            );
        }
        return Err(format!(
            "{} of {} job(s) did not complete ({} timed-out, {} quarantined, {} failed)",
            batch.failed(),
            batch.results.len(),
            batch.timed_out(),
            batch.quarantined(),
            batch.failed() - batch.timed_out() - batch.quarantined(),
        ));
    }
    Ok(())
}

/// `qtenon batch --chaos`: sweep fault rates × retry budgets over the
/// synthetic chaos fleet, checking the containment invariants per cell.
fn run_chaos(args: &BatchArgs) -> Result<(), String> {
    let campaign = ChaosCampaign::quick().with_pool_widths(vec![1, args.threads.max(2)]);
    let report = campaign.run().map_err(|e| e.to_string())?;
    print!("{}", report.to_table());
    if let Some(path) = &args.ledger {
        std::fs::write(path, report.ledgers()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("campaign ledgers written to {path}");
    }
    if let Some(path) = &args.metrics {
        write_metrics_pair(path, |registry| report.export_metrics(registry))?;
        println!("campaign metrics written to {path} (JSON) and {path}.prom (Prometheus)");
    }
    if !report.all_invariants_hold() {
        return Err("chaos campaign violated a containment invariant (see table)".into());
    }
    println!(
        "all containment invariants hold across {} cells",
        report.cells.len()
    );
    Ok(())
}

/// Exports a metric tree to `PATH` (JSON) and `PATH.prom` (Prometheus).
fn write_metrics_pair(path: &str, export: impl FnOnce(&mut MetricsRegistry)) -> Result<(), String> {
    let mut registry = MetricsRegistry::new();
    export(&mut registry);
    let snapshot = registry.snapshot();
    std::fs::write(path, snapshot.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
    let prom_path = format!("{path}.prom");
    std::fs::write(&prom_path, snapshot.to_prometheus())
        .map_err(|e| format!("cannot write {prom_path}: {e}"))?;
    Ok(())
}

/// Builds the fault plan from `--faults`/`--fault-seed`: the argument is
/// read as a file when one exists at that path, otherwise parsed as an
/// inline spec.
fn fault_plan(args: &Args) -> Result<FaultPlan, String> {
    let mut plan = match &args.faults {
        Some(spec_or_file) => {
            let spec = match std::fs::read_to_string(spec_or_file) {
                Ok(contents) => contents,
                Err(_) => spec_or_file.clone(),
            };
            FaultPlan::parse(&spec).map_err(|e| format!("bad --faults: {e}"))?
        }
        None => FaultPlan::default(),
    };
    if let Some(seed) = args.fault_seed {
        plan.seed = seed;
    }
    Ok(plan)
}

fn load_circuit(path: &str) -> Result<Circuit, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let parsed = qasm::parse(&source).map_err(|e| e.to_string())?;
    transpile::to_native(&parsed).map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut argv = std::env::args().skip(1).peekable();
    if argv.peek().map(String::as_str) == Some("batch") {
        argv.next();
        return run_batch(argv);
    }
    let args = parse_args()?;
    let circuit = load_circuit(&args.file)?;
    let n = circuit.n_qubits();
    let plan = fault_plan(&args)?;
    let config = QtenonConfig::table4(n, CoreModel::Rocket)
        .map_err(|e| e.to_string())?
        .with_seed(args.seed)
        .with_threads(args.threads)
        .with_faults(plan)
        .with_profile(args.profile)
        .with_fuse(!args.no_fuse);
    // `--cache` routes the compile through a private compilation cache:
    // the single run still compiles cold (the cache is empty), but the
    // artefacts are byte-identical by the cache's contract and the
    // statistics line below demonstrates the no-NaN idle/miss rendering.
    let cache = if args.cache {
        Some(qtenon::compiler::CompilationCache::shared(
            args.cache_capacity,
        ))
    } else {
        None
    };
    let cached = match &cache {
        Some(c) => Some(
            c.compile(config.layout, &circuit)
                .map_err(|e| e.to_string())?,
        ),
        None => None,
    };
    let fallback;
    let program: &qtenon::compiler::CompiledProgram = match &cached {
        Some(cp) => cp.program(),
        None => {
            fallback = QtenonCompiler::new(config.layout)
                .compile(&circuit)
                .map_err(|e| e.to_string())?;
            &fallback
        }
    };

    match args.command.as_str() {
        "disasm" => {
            for (q, chunk) in program.chunks().iter().enumerate() {
                if chunk.is_empty() {
                    continue;
                }
                println!("qubit #{q}:");
                let rows = disasm::disassemble_chunk(&config.layout, QubitId::new(q as u32), chunk)
                    .map_err(|e| e.to_string())?;
                print!("{}", disasm::format_listing(&rows));
                println!();
            }
            println!(
                "{} entries across {} chunks, {} register slots",
                program.total_entries(),
                program.chunks().iter().filter(|c| !c.is_empty()).count(),
                program.slots().len()
            );
            Ok(())
        }
        "run" | "trace" => {
            let tracing = args.command == "trace" || args.trace_out.is_some();
            let mut system = QtenonSystem::new(config).map_err(|e| e.to_string())?;
            if args.noise {
                // The CLI uses the system's chip; attach noise by running
                // through a noisy standalone simulator for the sampling
                // step below instead.
                eprintln!("note: --noise applies typical superconducting error rates");
            }
            system.set_tracing(tracing);
            // Root the causal chain at t=0 so the first q_set edge is
            // charged from program start rather than auto-rooted at its
            // own completion time.
            system.critpath_mut().open_at(SimTime::ZERO);

            let mut now = SimTime::ZERO;
            for instr in program.load_instructions(0x8000_0000) {
                if let qtenon::isa::Instruction::QSet {
                    classical_addr,
                    qaddr,
                    ..
                } = instr
                {
                    let q = config
                        .layout
                        .decode(qaddr)
                        .map_err(|e| e.to_string())?
                        .qubit
                        .expect("program chunk");
                    now = system
                        .q_set_program(
                            now,
                            classical_addr,
                            qaddr,
                            &program.chunks()[q.index() as usize],
                        )
                        .map_err(|e| e.to_string())?;
                }
            }
            let items = match (&cache, &cached) {
                (Some(c), Some(cp)) => c
                    .work_items(cp, &[])
                    .map_err(|e| e.to_string())?
                    .to_vec(),
                _ => program.work_items(&[]).map_err(|e| e.to_string())?,
            };
            let (gen, t) = system.q_gen(now, &items).map_err(|e| e.to_string())?;
            let outcome = if args.noise {
                // Sample through a noisy simulator, then deposit manually.
                let mut sim = qtenon::quantum::sim::Simulator::fast(n, args.seed)
                    .with_noise(NoiseModel::typical_superconducting());
                let shots = sim.run(&circuit, args.shots).map_err(|e| e.to_string())?;
                (None, shots, t)
            } else {
                let o = system
                    .q_run(t, &circuit, args.shots)
                    .map_err(|e| e.to_string())?;
                let complete = o.complete;
                (Some(complete), o.shots, t)
            };
            let (complete, shots, _) = outcome;

            if let Some(path) = &args.metrics {
                let mut registry = MetricsRegistry::new();
                system.export_metrics(&mut registry);
                let snapshot = registry.snapshot();
                std::fs::write(path, snapshot.to_json())
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                let prom_path = format!("{path}.prom");
                std::fs::write(&prom_path, snapshot.to_prometheus())
                    .map_err(|e| format!("cannot write {prom_path}: {e}"))?;
                print!("{}", snapshot.to_text());
                println!("metrics written to {path} (JSON) and {prom_path} (Prometheus)");
            }

            if tracing {
                system.trace_critpath();
                let trace = system.take_trace().expect("tracing enabled");
                let json = trace.to_chrome_json();
                if let Some(path) = &args.trace_out {
                    std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
                    println!("trace written to {path}");
                }
                if args.command == "trace" {
                    println!("{json}");
                    return Ok(());
                }
            }

            if args.profile {
                println!("phase attribution (sim time, deterministic):");
                print!("{}", system.phase_table().render());
                let wall = system.profiler().render_wall_unstable();
                if !wall.is_empty() {
                    println!();
                    print!("{wall}");
                }
            }

            if args.critpath {
                println!("critical path (who blocks whom, sim time, deterministic):");
                print!("{}", system.critpath_report().render());
            }

            if plan.is_active() {
                let r = system.resilience();
                println!(
                    "fault injection (seed {:#x}): {} injected; recovered via {} bus retries, \
                     {} PGU stalls, {} PGU redispatches, {} SLT invalidations, \
                     {} RBQ reclaims, {} ECC corrections",
                    plan.seed,
                    r.faults_injected,
                    r.bus_retries,
                    r.pgu_stalls,
                    r.pgu_redispatches,
                    r.slt_invalidations,
                    r.rbq_reclaims,
                    r.ecc_corrections,
                );
            }

            if let Some(c) = &cache {
                println!("{}", c.stats().describe());
            }

            // Histogram of outcomes (top 16).
            let mut counts: BTreeMap<String, u64> = BTreeMap::new();
            for s in &shots {
                *counts.entry(s.to_string()).or_insert(0) += 1;
            }
            let mut sorted: Vec<_> = counts.into_iter().collect();
            sorted.sort_by(|a, b| b.1.cmp(&a.1));
            println!(
                "{} qubits, {} shots, {} pulses generated{}",
                n,
                args.shots,
                gen.generated,
                match complete {
                    Some(c) => format!(", simulated time {}", c.elapsed()),
                    None => String::new(),
                }
            );
            for (bits, count) in sorted.iter().take(16) {
                let bar = "#".repeat((count * 40 / args.shots.max(1)) as usize);
                println!("  {bits}  {count:>6}  {bar}");
            }
            if sorted.len() > 16 {
                println!("  … {} more outcomes", sorted.len() - 16);
            }
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}
