//! # Qtenon
//!
//! A full-system reproduction of *"Qtenon: Towards Low-Latency
//! Architecture Integration for Accelerating Hybrid Quantum-Classical
//! Computing"* (ISCA 2025): a tightly coupled RISC-V + quantum-accelerator
//! system with a unified memory hierarchy, an SLT-equipped quantum
//! controller, a four-stage pulse pipeline, the five-instruction Qtenon
//! ISA, fine-grained memory consistency, and batched transmission
//! scheduling — plus the decoupled host+FPGA baseline it is evaluated
//! against.
//!
//! This umbrella crate re-exports every workspace crate under one roof:
//!
//! - [`sim_engine`]: discrete-event simulation kernel (time, clocks,
//!   events, op counting);
//! - [`quantum`]: circuit IR, transpiler, state-vector and mean-field
//!   simulators, Hamiltonians, gate timing;
//! - [`isa`]: QAddress space, RoCC encodings, the five Qtenon
//!   instructions, program-entry formats;
//! - [`mem`]: caches, DRAM, the quantum controller cache, QSpace;
//! - [`controller`]: RBQ, WBQ, memory barrier, TileLink bus, SLT, PGU
//!   pool, pulse pipeline, SerDes/ADI;
//! - [`compiler`]: Qtenon compilation + dynamic incremental compilation,
//!   and the baseline JIT model;
//! - [`core`]: the integrated tightly coupled system and VQA runner;
//! - [`baseline`]: the decoupled comparison system;
//! - [`workloads`]: QAOA / VQE / QNN builders and the GD / SPSA
//!   optimizers.
//!
//! # Quickstart
//!
//! ```
//! use qtenon::core::config::{CoreModel, QtenonConfig};
//! use qtenon::core::vqa::VqaRunner;
//! use qtenon::workloads::{SpsaOptimizer, Workload};
//!
//! // A 8-qubit QAOA MAX-CUT instance on the Table-4 system.
//! let config = QtenonConfig::table4(8, CoreModel::Rocket)?;
//! let workload = Workload::qaoa(8, 2, 42)?;
//! let mut runner = VqaRunner::new(config, workload)?;
//! let report = runner.run(&mut SpsaOptimizer::new(42), 3, 100)?;
//! println!(
//!     "end-to-end {} ({:.1}% quantum)",
//!     report.total,
//!     report.exposed_shares()[0] * 100.0
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use qtenon_baseline as baseline;
pub use qtenon_compiler as compiler;
pub use qtenon_controller as controller;
pub use qtenon_core as core;
pub use qtenon_isa as isa;
pub use qtenon_mem as mem;
pub use qtenon_quantum as quantum;
pub use qtenon_sim_engine as sim_engine;
pub use qtenon_workloads as workloads;
